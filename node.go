package fsr

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/core"
	"fsr/internal/fd"
	"fsr/internal/ring"
	"fsr/internal/serve"
	"fsr/internal/vsc"
	"fsr/internal/wal"
	"fsr/internal/wire"
	"fsr/transport"
)

// ViewInfo describes one installed membership epoch.
type ViewInfo struct {
	// ID is the view epoch.
	ID uint64
	// Members is the agreed ring order; Members[0] is the leader.
	Members []ProcID
	// T is the number of failures this view tolerates.
	T int
}

// latencyWindow bounds how many broadcast-latency samples a node retains
// for Metrics.BroadcastLatency.
const latencyWindow = 1024

// Catch-up transfer paging: one response carries at most this many
// recovered messages / payload bytes, so serving a restarted peer never
// monopolizes the event loop or produces an oversized transport frame.
const (
	catchupMaxEntries = 256
	catchupMaxBytes   = 1 << 20
	// catchupMaxBacklog pauses page requests while this many recovered
	// messages sit in catchBuf awaiting the (fsync-bound) pump, so a long
	// transfer over a fast link cannot buffer the whole missed history in
	// memory; the tick resumes paging once the pump drains.
	catchupMaxBacklog = 4096
)

// maxParkedFrames bounds the frames parked during a view-change freeze; a
// pathologically long change falls back to dropping (view-change recovery
// then treats the overflow like any other in-flight loss).
const maxParkedFrames = 8192

// incarnationBits is the width of the per-incarnation MsgID band: each
// restart of a durable node advances the origin-local counter to
// generation << incarnationBits, so IDs minted after a crash can never
// collide with IDs of a previous life that may still sit in survivors'
// recovery buffers.
const incarnationBits = 40

// Node is one FSR group member: it owns the protocol engine, the failure
// detector and the view-change manager, and drives them over a transport.
//
// All protocol work happens on one event-loop goroutine; the public methods
// communicate with it through channels, so a Node is safe for concurrent
// use.
type Node struct {
	cfg Config
	tr  transport.Transport
	log *slog.Logger // cfg.Logger tagged with this node's ID

	engine *core.Engine
	mgr    *vsc.Manager
	fdet   *fd.Detector

	inbox  chan inboundPayload
	bcast  chan bcastReq
	joinc  chan []ProcID
	leave  chan struct{}
	rotate chan struct{}
	statsc chan chan Metrics
	stop   chan struct{}

	msgs  chan Message
	views chan ViewInfo

	// Durability (nil / zero without Config.DurableDir).
	wlog      *wal.Log
	sm        StateMachine
	sinceSnap int         // messages applied since the last snapshot (pump-owned)
	catch     *catchState // in-flight catch-up transfer (event-loop-owned)

	// Session serving: the publish dedup index and parked client publishes
	// (see nodesession.go) plus the shared serving engine — clients,
	// subscription pagers, per-client writers and the encode-once fan-out.
	sess *sessSrv
	srv  *serve.Server
	// fanScratch is the pump's reusable batch conversion buffer for the
	// encode-once tail (pump goroutine only).
	fanScratch []wire.ClientEventEntry

	outMu    sync.Mutex
	outCond  *sync.Cond
	outBuf   []Message
	outDone  bool
	pumpBusy bool // a popped batch is being persisted (outMu)
	snapPend bool // an admin-triggered snapshot awaits the pump (outMu)
	asmState *assembler
	// applied is the highest message sequence number persisted+applied;
	// written by the pump under outMu, read by the event loop. While
	// catching, the live stream is held back entirely until the catch-up
	// transfer fills the hole below it (the transfer covers everything
	// above the applied cursor, so held live copies simply deduplicate
	// afterwards); catchBuf carries the recovered history from the event
	// loop to the pump.
	applied  uint64
	catching bool
	catchBuf []catchItem

	subMu      sync.Mutex
	subs       []subscriber
	nextSubID  uint64
	subChanged chan struct{}
	// msgsClaimed flips once Messages() is called: only then does a full
	// channel block dispatch (the caller promised to drain). Unclaimed,
	// the channel is best-effort up to its buffer — a member consumed
	// purely through StateMachine or Sessions cannot be wedged by it.
	msgsClaimed atomic.Bool

	// Event-loop-owned state (no locking): receipts for own broadcasts,
	// keyed by logical message ID, the latency sample window, and protocol
	// frames parked during a view-change freeze (see handlePayload).
	receipts map[uint64]pendingReceipt
	latency  []time.Duration
	latNext  int
	parked   []*wire.Frame
	// Wire-compat skip counters (see version.go's policy): payloads dropped
	// for an incompatible protocol version, and payloads of a kind or
	// control type this build does not know.
	skippedVersion uint64
	skippedUnknown uint64

	// Hot-path scratch, event-loop-owned and reused across passes so the
	// steady-state frame pipeline allocates nothing: the batch-capable
	// transport (nil when the transport only does per-payload Send), the
	// outbound frame being assembled, the pooled encode buffers of the
	// current flush, and the engine delivery drain buffer.
	batcher      transport.BatchSender
	sendFrame    wire.Frame
	sendBufs     []*wire.Buf
	sendPayloads [][]byte
	delivBuf     []core.Delivery

	wg       sync.WaitGroup
	stopOnce sync.Once

	mu       sync.Mutex
	joined   bool
	evicted  bool
	err      error
	lastView ViewInfo
}

type inboundPayload struct {
	from    ProcID
	payload []byte
}

type bcastReq struct {
	payload []byte
	resp    chan bcastResp
}

type bcastResp struct {
	receipt *Receipt
	err     error
}

type pendingReceipt struct {
	r         *Receipt
	submitted time.Time
}

type subscriber struct {
	id uint64
	fn func(Message)
}

// catchItem is one piece of recovered history traveling from the event
// loop (which receives catch-up responses) to the delivery pump (which owns
// all durable state): either a full state transfer or one message.
type catchItem struct {
	snap *wal.Snapshot // state transfer; nil for a message
	msg  Message
}

// catchState tracks an in-flight catch-up transfer. Event-loop-owned.
type catchState struct {
	target   uint64    // catch-up is done once applied/after reaches this
	peers    []ProcID  // candidate servers, current view order, self excluded
	idx      int       // peer currently being asked
	after    uint64    // highest seq handed to the pump so far
	unavail  int       // consecutive "no durable log" answers
	lastSend time.Time // for timeout-driven retry/rotation
}

// NewNode builds and starts a node on the given transport. The transport's
// Self must match cfg.Self.
func NewNode(cfg Config, tr transport.Transport) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tr.Self() != cfg.Self {
		return nil, fmt.Errorf("fsr: transport self %d != config self %d", tr.Self(), cfg.Self)
	}
	view, err := cfg.initialView()
	if err != nil {
		return nil, err
	}

	// Durable recovery: rebuild the state machine and the delivery
	// position from snapshot + WAL before the protocol stack exists, so
	// the engine starts exactly where the previous incarnation stopped.
	var (
		wlog        *wal.Log
		applied     uint64
		startLocal  uint64
		incarnation uint64
		index       pubIndex // client-publish dedup index, rebuilt with the state
	)
	nodeLog := cfg.Logger.With("node", uint32(cfg.Self))
	if cfg.DurableDir != "" {
		wlog, err = wal.Open(cfg.DurableDir, wal.Options{
			SegmentBytes: cfg.WALSegmentBytes,
			FS:           cfg.WALFS,
			Logger:       nodeLog,
		})
		if err != nil {
			return nil, fmt.Errorf("fsr: open durable dir: %w", err)
		}
		if snap, ok := wlog.LatestSnapshot(); ok {
			// Snapshots are node-level: the publish index rides in front of
			// the application state (see wrapSnapshot).
			idxBytes, app := openSnapshot(snap.Data)
			if idxBytes != nil {
				index, _ = decodePubIndex(idxBytes)
			}
			if cfg.StateMachine != nil {
				if err := cfg.StateMachine.Restore(app); err != nil {
					_ = wlog.Close()
					return nil, fmt.Errorf("fsr: restore snapshot at %d: %w", snap.Seq, err)
				}
			}
			applied = snap.Seq
		}
		err = wlog.Replay(applied, func(e wal.Entry) error {
			if e.Origin >= uint32(ClientIDBase) {
				index.add(ProcID(e.Origin), e.LogicalID, e.Seq)
			}
			if cfg.StateMachine != nil {
				cfg.StateMachine.Apply(Message{
					Seq:       e.Seq,
					Origin:    ProcID(e.Origin),
					LogicalID: e.LogicalID,
					Payload:   e.Payload,
				})
			}
			applied = e.Seq
			return nil
		})
		if err != nil {
			_ = wlog.Close()
			return nil, fmt.Errorf("fsr: replay WAL: %w", err)
		}
		incarnation = wlog.Generation()
		startLocal = incarnation << incarnationBits
	} else {
		// No durable identity: a boot timestamp keeps incarnations of one
		// ID monotone enough for the membership layer's restart handling,
		// and seeds the MsgID band so a fast-restarted ephemeral node
		// cannot re-mint IDs its previous life may still have in flight
		// (~4ms resolution, wrapping after ~19h — far beyond any pending
		// message's lifetime).
		now := uint64(time.Now().UnixNano())
		incarnation = now
		startLocal = ((now >> 22) & (1<<24 - 1)) << incarnationBits
	}

	engine, err := core.NewEngine(core.Config{
		Self:         cfg.Self,
		SegmentSize:  cfg.SegmentSize,
		MaxPiggyback: cfg.MaxPiggyback,
		MaxFrameData: cfg.MaxFrameData,
		StartDeliver: applied + 1,
		StartLocal:   startLocal,
	}, view)
	if err != nil {
		if wlog != nil {
			_ = wlog.Close()
		}
		return nil, err
	}

	n := &Node{
		cfg:        cfg,
		tr:         tr,
		log:        nodeLog,
		engine:     engine,
		wlog:       wlog,
		sm:         cfg.StateMachine,
		applied:    applied,
		inbox:      make(chan inboundPayload, 4096),
		bcast:      make(chan bcastReq),
		joinc:      make(chan []ProcID, 1),
		leave:      make(chan struct{}, 1),
		rotate:     make(chan struct{}, 1),
		statsc:     make(chan chan Metrics),
		stop:       make(chan struct{}),
		msgs:       make(chan Message, 256),
		views:      make(chan ViewInfo, 64),
		subChanged: make(chan struct{}),
		receipts:   make(map[uint64]pendingReceipt),
		joined:     !cfg.Joiner,
		lastView:   viewInfo(view),
	}
	n.outCond = sync.NewCond(&n.outMu)
	n.batcher, _ = tr.(transport.BatchSender)
	n.sess = newSessSrv(n)
	n.sess.index = index
	if wlog == nil {
		// No durable log: retain a bounded in-memory tail of the applied
		// order for subscribers. The horizon rises past anything this
		// member never delivered (a joiner's missed prefix, holes).
		n.sess.memlog = &memLog{}
	}

	n.fdet, err = fd.New(fd.Config{
		Self:     cfg.Self,
		Interval: cfg.HeartbeatInterval,
		Timeout:  cfg.FailureTimeout,
		Send: func(to ring.ProcID, payload []byte) {
			_ = n.tr.Send(to, payload) // silence is what the FD detects
		},
		Suspect: func(p ring.ProcID) {
			// Called from within the loop's fdet.Tick.
			n.mgr.OnSuspect(p, time.Now())
		},
	})
	if err != nil {
		if wlog != nil {
			_ = wlog.Close()
		}
		return nil, err
	}

	n.mgr, err = vsc.NewManager(vsc.Config{
		Self:          cfg.Self,
		T:             cfg.T,
		ChangeTimeout: cfg.ChangeTimeout,
		Joiner:        cfg.Joiner,
		Incarnation:   incarnation,
		Logger:        nodeLog,
		Callbacks: vsc.Callbacks{
			Send: func(to ring.ProcID, payload []byte) {
				_ = n.tr.Send(to, payload)
			},
			Snapshot: func() core.RecoveryState { return n.engine.Snapshot() },
			Install:  n.install,
			Evicted:  n.onEvicted,
		},
	}, view)
	if err != nil {
		if wlog != nil {
			_ = wlog.Close()
		}
		return nil, err
	}
	if !cfg.Joiner {
		n.fdet.SetPeers(cfg.Members, time.Now())
	}

	n.srv = n.newServe()

	tr.SetHandler(func(from transport.ProcID, payload []byte) {
		select {
		case n.inbox <- inboundPayload{from: from, payload: payload}:
		case <-n.stop:
		}
	})

	n.log.Info("node start",
		"joiner", cfg.Joiner, "durable", cfg.DurableDir != "",
		"incarnation", incarnation, "applied", applied, "t", cfg.T)
	n.wg.Add(2)
	go n.loop()
	go n.deliveryPump()
	return n, nil
}

// viewInfo converts an installed core view into the public shape.
func viewInfo(v core.View) ViewInfo {
	return ViewInfo{ID: v.ID, Members: v.Ring.Members(), T: v.Ring.T()}
}

// Self returns this node's process ID.
func (n *Node) Self() ProcID { return n.cfg.Self }

// Messages returns the TO-delivered message stream, in total order. The
// channel closes when the node halts. Consumers must drain it; the node
// buffers internally, so slow consumers never stall the protocol.
//
// While at least one Subscribe handler is registered, newly dispatched
// messages go to the handlers instead of this channel; the two are
// alternative consumption modes for the same ordered stream. A node with a
// Config.StateMachine feeds the state machine instead and leaves this
// channel silent unless a Subscribe handler is registered.
//
// Claim the channel (call Messages) before the stream starts: until the
// first call the channel is filled best-effort only — once its buffer is
// full further messages skip it, so a member consumed through its
// StateMachine or through Sessions is never wedged by an unread channel.
// After the first call a full channel blocks dispatch (later messages are
// never dropped), as a claimed stream must stay complete.
func (n *Node) Messages() <-chan Message {
	n.msgsClaimed.Store(true)
	return n.msgs
}

// Subscribe registers fn to receive delivered messages in total order,
// starting with the first message dispatched after registration. All
// handlers run sequentially on one dispatch goroutine (a slow handler
// delays later messages but never the protocol itself, which buffers
// internally). Handlers must return: a handler that blocks forever wedges
// delivery and Stop, and a handler must not call Stop itself. Messages
// still buffered when the node halts are dropped, as in channel mode. The
// returned cancel function unregisters fn; once no handlers remain,
// delivery reverts to the Messages channel.
func (n *Node) Subscribe(fn func(Message)) (cancel func()) {
	n.subMu.Lock()
	id := n.nextSubID
	n.nextSubID++
	n.subs = append(slices.Clone(n.subs), subscriber{id: id, fn: fn})
	n.signalSubChange()
	n.subMu.Unlock()
	return func() {
		n.subMu.Lock()
		defer n.subMu.Unlock()
		for i, s := range n.subs {
			if s.id == id {
				n.subs = slices.Delete(slices.Clone(n.subs), i, i+1)
				n.signalSubChange()
				return
			}
		}
	}
}

// signalSubChange wakes a dispatch blocked on the Messages channel so it
// re-evaluates the consumption mode. Callers hold subMu.
func (n *Node) signalSubChange() {
	close(n.subChanged)
	n.subChanged = make(chan struct{})
}

// Views returns installed-view notifications (advisory: entries are dropped
// if the consumer lags). CurrentView reports the latest view without
// consuming from this stream.
func (n *Node) Views() <-chan ViewInfo { return n.views }

// CurrentView returns the most recently installed view. Unlike Views, it
// does not consume anything and is safe to poll alongside a Views consumer.
func (n *Node) CurrentView() ViewInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := n.lastView
	v.Members = slices.Clone(v.Members)
	return v
}

// Err returns the fatal error that halted the node, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Metrics returns a coherent snapshot of the node's protocol counters,
// queue depths and broadcast latency summary, taken on the event loop. A
// halted node returns the zero Metrics.
func (n *Node) Metrics() Metrics {
	req := make(chan Metrics, 1)
	select {
	case n.statsc <- req:
		return <-req
	case <-n.stop:
		return Metrics{}
	}
}

// Broadcast submits payload for uniform total order broadcast. It returns
// once the protocol engine has accepted the message — not once delivered —
// with a Receipt that resolves at local (hence uniform) delivery. Broadcast
// blocks while the node's own-queue is at MaxPendingOwn (backpressure) and
// honors ctx cancellation while blocked; ctx does not bound delivery (use
// Receipt.Wait for that).
func (n *Node) Broadcast(ctx context.Context, payload []byte) (*Receipt, error) {
	req := bcastReq{payload: payload, resp: make(chan bcastResp, 1)}
	select {
	case n.bcast <- req:
	case <-n.stop:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp.receipt, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Join asks the group for admission (Joiner nodes only); contacts are the
// known members. It reports whether the request was accepted by the event
// loop — false means the node has halted, or an earlier join request is
// still queued and THIS call was dropped (the queued attempt keeps its own
// contact list; call Join again if yours differs). Once accepted, Join
// retries internally until admitted; admission is confirmed by a view on
// Views (or CurrentView) including this node.
func (n *Node) Join(contacts []ProcID) bool {
	if n.stopping() {
		return false
	}
	select {
	case n.joinc <- contacts:
		return true
	default:
		return false
	}
}

// Leave announces a graceful departure; the node stops once the view change
// excluding it completes (Stop is then unnecessary but harmless). It
// reports whether the request was accepted — false means the node has
// already halted, or a leave is already queued (the departure is underway
// either way).
func (n *Node) Leave() bool {
	if n.stopping() {
		return false
	}
	select {
	case n.leave <- struct{}{}:
		return true
	default:
		return false
	}
}

// RotateLeader asks for a view change that shifts the ring order by one,
// moving the sequencer role to the next process — the paper's §4.3.1
// device for evenly distributing latency across senders. Only honored when
// this node currently coordinates the group (it is the leader); a
// follower's request is silently ignored by the membership layer. It
// reports whether the request was accepted by the event loop — false means
// the node has halted, or a rotation is already queued and this one was
// coalesced.
func (n *Node) RotateLeader() bool {
	if n.stopping() {
		return false
	}
	select {
	case n.rotate <- struct{}{}:
		return true
	default:
		return false
	}
}

// Stop halts the node and closes Messages. Safe to call more than once.
func (n *Node) Stop() {
	n.halt()
	n.wg.Wait()
	// Serving teardown order matters: mark the serving engine dead first,
	// then close the transport (which unblocks any client writer stuck in
	// a socket write to a stalled subscriber), then join its goroutines.
	n.srv.Shutdown()
	_ = n.tr.Close()
	n.srv.Wait()
	if n.wlog != nil {
		_ = n.wlog.Close()
	}
}

// Applied returns the highest message sequence number this node has
// applied — its position in the total order as an application (persisted
// and folded into the state machine), as opposed to the protocol's
// segment-delivery cursor. With DurableDir it survives restarts.
func (n *Node) Applied() uint64 {
	n.outMu.Lock()
	defer n.outMu.Unlock()
	return n.applied
}

// Ready reports nil when the node can serve: it has installed a view, is
// not catching up on missed history, and its durable directory (if any)
// still accepts writes. Otherwise the error names the first failing
// condition — the substance behind an operator-facing /readyz probe.
func (n *Node) Ready() error {
	if n.stopping() {
		if err := n.Err(); err != nil {
			return err
		}
		return ErrStopped
	}
	n.mu.Lock()
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return errors.New("fsr: no installed view")
	}
	n.outMu.Lock()
	catching := n.catching
	n.outMu.Unlock()
	if catching {
		return errors.New("fsr: catching up on missed history")
	}
	if n.wlog != nil {
		if err := n.wlog.Writable(); err != nil {
			return err
		}
	}
	return nil
}

// TriggerSnapshot asks the delivery pump to take a state-machine snapshot
// at the current applied position ahead of the SnapshotEvery cadence (an
// operator device: bound restart replay before planned maintenance). It
// reports whether the request was queued — false when the node runs
// without a durable log or state machine, or has halted.
func (n *Node) TriggerSnapshot() bool {
	if n.wlog == nil || n.sm == nil || n.stopping() {
		return false
	}
	n.outMu.Lock()
	n.snapPend = true
	n.outCond.Signal()
	n.outMu.Unlock()
	return true
}

// halt closes the stop channel exactly once; the event loop notices and
// shuts the node down.
func (n *Node) halt() {
	n.stopOnce.Do(func() { close(n.stop) })
}

// fail records a fatal protocol error and halts the node (fail-stop): the
// event loop exits, Messages closes, pending receipts fail, and the error
// surfaces via Err. Peers notice the resulting heartbeat silence and evict
// this node through a view change.
func (n *Node) fail(err error) {
	n.mu.Lock()
	first := n.err == nil
	if first {
		n.err = err
	}
	n.mu.Unlock()
	if first {
		n.log.Error("node fail-stop", "err", err, "epoch", n.CurrentView().ID)
	}
	n.halt()
}

// onEvicted handles exclusion from the group: the departure (graceful
// leave honored, or — impossible under a perfect failure detector — a
// false suspicion) is terminal, so the node halts. Staying up would let
// the ex-member drift into a divergent singleton group once its former
// peers stop heartbeating it: its own failure detector would "suspect"
// them all, install a one-member view, and re-sequence its pending
// broadcasts in a private total order. Fail-stop is the only behavior
// that cannot silently diverge.
func (n *Node) onEvicted() {
	n.mu.Lock()
	n.evicted = true
	n.mu.Unlock()
	n.log.Warn("node evicted", "epoch", n.CurrentView().ID)
	// Own undelivered broadcasts left the group with us; they may or may
	// not survive through other members' recovery state, so the receipts
	// resolve with an error rather than hanging forever.
	n.failReceipts(ErrStopped)
	n.halt()
}

// install applies an agreed view: engine first, then rebroadcasts, then the
// failure detector, then the advisory notification.
func (n *Node) install(v core.View, sync *core.Sync, rebroadcast []core.PendingMsg) {
	prevNext := n.engine.NextDeliver()
	if err := n.engine.InstallView(v, sync); err != nil {
		n.fail(err)
		return
	}
	for _, m := range rebroadcast {
		if err := n.engine.ReBroadcast(m); err != nil {
			n.fail(err)
			return
		}
	}
	n.fdet.SetPeers(v.Ring.Members(), time.Now())
	info := viewInfo(v)
	n.mu.Lock()
	n.joined = true
	n.lastView = info
	n.mu.Unlock()
	n.log.Info("view installed",
		"epoch", info.ID, "leader", uint32(info.Members[0]), "members", len(info.Members),
		"t", info.T, "sync_base", sync.StartSeq, "rebroadcasts", len(rebroadcast))
	// The channel consumer owns what it receives; hand it its own Members
	// copy so mutating it cannot corrupt CurrentView/Metrics.
	info.Members = slices.Clone(info.Members)
	select {
	case n.views <- info:
	default:
	}
	// Connected session clients learn the new view (best-effort): a client
	// bound to a departed member fails over sooner than its timeouts.
	n.srv.NotifyAll(wire.RedirectView)
	n.refreshCatchup(v, sync, prevNext)
}

// frozen reports whether protocol frames must be parked instead of fed to
// the engine: a view change is in flight, or this node has not been
// admitted yet. Event-loop context.
func (n *Node) frozen() bool {
	if n.mgr.Changing() {
		return true
	}
	n.mu.Lock()
	joined := n.joined
	n.mu.Unlock()
	return !joined
}

// replayParked feeds frames parked during a freeze to the engine once the
// freeze lifts. Frames of a superseded view are dropped by the engine's
// view check; frames of the just-installed view resume seamlessly.
func (n *Node) replayParked() {
	if len(n.parked) == 0 || n.frozen() {
		return
	}
	parked := n.parked
	n.parked = nil
	for i, f := range parked {
		err := n.engine.HandleFrame(f)
		wire.PutFrame(f)
		parked[i] = nil
		if err != nil {
			n.fail(err) // remaining parked frames are garbage-collected
			return
		}
	}
}

// stopping reports whether the stop channel is closed (Stop or fail).
func (n *Node) stopping() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// shutdown is the loop's single exit path: stop the engine, fail whatever
// broadcasts cannot complete, and release the delivery pump. Session
// clients get a best-effort goodbye so they fail over immediately instead
// of waiting out their timeouts.
func (n *Node) shutdown() {
	n.srv.NotifyAll(wire.RedirectBye)
	n.engine.Stop()
	err := n.Err()
	if err == nil {
		err = ErrStopped
	}
	n.failReceipts(err)
	n.closeDeliveries()
}

// failReceipts resolves every outstanding receipt with err. Called from the
// event loop (shutdown, eviction).
func (n *Node) failReceipts(err error) {
	for id, pr := range n.receipts {
		pr.r.fail(err)
		delete(n.receipts, id)
	}
}

// loop is the single event-loop goroutine owning all protocol state.
//
// Each iteration first drains all queued inbound payloads (so the engine
// sees the current ring state), then flushes every frame the engine has
// ready to the successor in one transport batch. Relayed traffic batches
// into multi-segment frames; own initiation stays paced at one segment per
// frame (FillFrame closes a frame after an own send), which is what lets
// the paper's fairness rule keep interleaving relayed traffic with own
// messages instead of flushing whole own-queues in one burst. The
// transport's pacing — NIC serialization, socket-buffer backpressure —
// still throttles the loop between flushes.
func (n *Node) loop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	var joinContacts []ProcID
	lastJoin := time.Time{}
	for {
		if n.stopping() {
			n.shutdown()
			return
		}
	drain:
		for {
			select {
			case in := <-n.inbox:
				n.handlePayload(in)
				if n.stopping() {
					n.shutdown()
					return
				}
			default:
				break drain
			}
		}
		n.replayParked()
		n.deliver()
		if n.sendReady() {
			continue
		}

		// Backpressure: stop accepting broadcasts while the own-queue is
		// full, the node has not joined yet, a view change is in flight,
		// or the node is still catching up on missed history. An evicted
		// node keeps accepting so it can reject with an error instead of
		// blocking during the brief window before its halt takes effect.
		bc := n.bcast
		n.mu.Lock()
		joined, evicted := n.joined, n.evicted
		n.mu.Unlock()
		if !evicted && (n.engine.PendingOwn() >= n.cfg.MaxPendingOwn || !joined ||
			n.mgr.Changing() || n.catch != nil) {
			bc = nil
		} else if !evicted {
			// The same gate just opened for client publishes parked under
			// backpressure: broadcast them now.
			n.drainClientPubs()
		}

		select {
		case <-n.stop:
			n.shutdown()
			return

		case in := <-n.inbox:
			n.handlePayload(in)

		case req := <-bc:
			if evicted {
				req.resp <- bcastResp{err: ErrStopped}
				break
			}
			first, err := n.engine.Broadcast(wrapRaw(req.payload))
			if err != nil {
				req.resp <- bcastResp{err: err}
				break
			}
			r := newReceipt()
			n.receipts[first.Local] = pendingReceipt{r: r, submitted: time.Now()}
			req.resp <- bcastResp{receipt: r}

		case contacts := <-n.joinc:
			joinContacts = contacts
			n.mgr.RequestJoin(contacts)
			lastJoin = time.Now()

		case <-n.leave:
			n.mgr.RequestLeave()

		case <-n.rotate:
			n.mgr.RotateLeader(time.Now())

		case req := <-n.statsc:
			req <- n.snapshotMetrics()

		case now := <-tick.C:
			n.fdet.Tick(now)
			n.mgr.Tick(now)
			n.tickCatchup(now)
			n.mu.Lock()
			joined := n.joined
			n.mu.Unlock()
			if !joined && joinContacts != nil && now.Sub(lastJoin) > n.cfg.ChangeTimeout {
				n.mgr.RequestJoin(joinContacts)
				lastJoin = now
			}
		}
	}
}

// snapshotMetrics assembles a Metrics snapshot. Event-loop context only.
func (n *Node) snapshotMetrics() Metrics {
	st := n.engine.Stats()
	relay, own, acks := n.engine.QueueDepths()
	m := Metrics{
		View:             n.CurrentView(),
		IsLeader:         n.engine.IsLeader(),
		FramesIn:         st.FramesIn,
		FramesOut:        st.FramesOut,
		DataIn:           st.DataIn,
		AcksIn:           st.AcksIn,
		Sequenced:        st.Sequenced,
		Delivered:        st.Delivered,
		StaleFrames:      st.StaleFrames,
		RelayedData:      st.RelayedData,
		OwnSent:          st.OwnSent,
		FairnessSkips:    st.FairnessSkips,
		StandaloneAcks:   st.StandaloneAcks,
		MultiSegFrames:   st.MultiSegFrames,
		SkippedVersion:   n.skippedVersion,
		SkippedUnknown:   n.skippedUnknown,
		RelayQueue:       relay,
		OwnQueue:         own,
		AckQueue:         acks,
		PendingReceipts:  len(n.receipts),
		Applied:          n.Applied(),
		CatchingUp:       n.catch != nil,
		BroadcastLatency: summarizeLatency(n.latency),
	}
	n.sess.mu.Lock()
	m.SessionPublishes = n.sess.pubsAccepted
	m.SessionDuplicates = n.sess.dupsFiltered
	m.SessionBounded = n.sess.pubsBounded
	m.PublishLatency = n.sess.pubLatency
	n.sess.mu.Unlock()
	if n.wlog != nil {
		ws := n.wlog.Stats()
		m.WAL = WALMetrics{
			Segments:    ws.Segments,
			Bytes:       ws.Bytes,
			Appends:     ws.Appends,
			Fsyncs:      ws.Fsyncs,
			Rotations:   ws.Rotations,
			Snapshots:   ws.Snapshots,
			SnapshotSeq: ws.SnapshotSeq,
			Repairs:     ws.Repairs,
			Poisoned:    ws.Poisoned,
		}
		if !ws.SnapshotTime.IsZero() {
			m.WAL.SnapshotAge = time.Since(ws.SnapshotTime)
		}
	}
	st2 := n.srv.Stats()
	m.SessionSubscribers = st2.Subs
	m.TailAttached = st2.TailAttached
	m.TailFrames = st2.TailFrames
	m.TailDetaches = st2.TailDetaches
	m.EdgeClients = st2.EdgeClients
	return m
}

// recordLatency folds one acceptance-to-delivery sample into the bounded
// window. Event-loop context only.
func (n *Node) recordLatency(d time.Duration) {
	if len(n.latency) < latencyWindow {
		n.latency = append(n.latency, d)
		return
	}
	n.latency[n.latNext] = d
	n.latNext = (n.latNext + 1) % latencyWindow
}

// sendReady flushes every frame the engine has ready — each one batching up
// to MaxFrameData segments under the per-slot fairness rule — to the ring
// successor in a single SendBatch (one vectored write on TCP), encoding
// through pooled buffers. It reports whether any frame went out.
func (n *Node) sendReady() bool {
	if n.mgr.Changing() {
		return false
	}
	r := n.mgr.View().Ring
	succ, ok := r.Successor(n.cfg.Self)
	if !ok || succ == n.cfg.Self {
		return false
	}
	if n.batcher == nil {
		// Transport without batch support: per-frame sends; each encoded
		// buffer's ownership passes to the transport, so no pooling here.
		sent := false
		for {
			f, ok := n.engine.NextFrame()
			if !ok {
				break
			}
			f.Ver = n.cfg.WireVersion
			if err := n.tr.Send(succ, wire.EncodeFrame(f)); err != nil {
				// Successor unreachable: the FD takes it from here.
				if sent {
					n.deliver()
				}
				return false
			}
			sent = true
		}
		if sent {
			n.deliver()
		}
		return sent
	}
	n.sendFrame.Ver = n.cfg.WireVersion
	for n.engine.FillFrame(&n.sendFrame) {
		b := wire.GetBuf()
		b.B = wire.AppendFrame(b.B, &n.sendFrame)
		n.sendBufs = append(n.sendBufs, b)
		n.sendPayloads = append(n.sendPayloads, b.B)
	}
	if len(n.sendPayloads) == 0 {
		return false
	}
	// SendBatch leaves buffer ownership with the caller, so the pooled
	// encode buffers recycle immediately after the (single) write.
	err := n.batcher.SendBatch(succ, n.sendPayloads)
	for i := range n.sendBufs {
		wire.PutBuf(n.sendBufs[i])
		n.sendBufs[i] = nil
		n.sendPayloads[i] = nil
	}
	n.sendBufs = n.sendBufs[:0]
	n.sendPayloads = n.sendPayloads[:0]
	n.deliver()
	return err == nil // unreachable successor: the FD takes it from here
}

// handlePayload dispatches one transport payload by channel kind.
func (n *Node) handlePayload(in inboundPayload) {
	if len(in.payload) == 0 {
		return
	}
	switch in.payload[0] {
	case wire.KindFSR:
		// Pooled decode: the Frame struct and its item slices recycle once
		// the engine has consumed the frame (the engine copies what it
		// keeps; segment bodies alias in.payload, which the protocol layer
		// owns from here on, not the pooled frame).
		f := wire.GetFrame()
		if err := wire.DecodeFrameInto(f, in.payload); err != nil {
			wire.PutFrame(f)
			if errors.Is(err, wire.ErrVersion) {
				// Incompatible-major peer (a botched upgrade, or a too-new
				// member talking to us): drop the frame, stay alive. The
				// peer's traffic simply does not exist for us; membership
				// sorts itself out through the failure detector.
				n.skippedVersion++
				n.cfg.Logger.Warn("fsr: dropped incompatible-version frame",
					"from", in.from, "err", err)
				return
			}
			n.fail(err)
			return
		}
		// Freeze: while a view change is in flight (or before a joiner is
		// admitted) protocol frames are parked, not processed. The flush
		// snapshot taken at the change's start must stay authoritative —
		// sequencing or delivering from late in-flight frames after the
		// freeze would let state escape the agreed sync (duplicated
		// rebroadcasts, diverging deliveries). Parking rather than dropping
		// also saves frames of the NEW view that arrive before our NEWVIEW
		// does: there is no retransmission below the view-change layer, so
		// dropping them would strand their segments forever. Replay happens
		// on the loop as soon as the freeze lifts; old-view stragglers are
		// then discarded by the engine's view check.
		if n.frozen() {
			if len(n.parked) < maxParkedFrames {
				n.parked = append(n.parked, f) // pooled again after replay
			} else {
				wire.PutFrame(f)
			}
			return
		}
		// Any frames parked before the freeze lifted must go first: this
		// frame may share a link with one of them, and per-link FIFO is the
		// engine's ground assumption (processing it ahead of an earlier
		// parked frame would reorder the link).
		n.replayParked()
		if n.stopping() {
			wire.PutFrame(f)
			return
		}
		err := n.engine.HandleFrame(f)
		wire.PutFrame(f)
		if err != nil {
			n.fail(err)
			return
		}
	case wire.KindVSC:
		if err := n.mgr.HandlePayload(in.from, in.payload, time.Now()); err != nil {
			if errors.Is(err, vsc.ErrUnknownType) {
				// A newer-minor peer's control message: skip, not fatal.
				n.skippedUnknown++
				return
			}
			n.fail(err)
			return
		}
	case wire.KindFD:
		from, err := fd.Decode(in.payload)
		if err != nil {
			return // malformed heartbeat: ignore
		}
		n.fdet.HandleHeartbeat(from, time.Now())
	case wire.KindCatchup:
		msg, err := wire.DecodeCatchup(in.payload)
		if err != nil {
			n.fail(err)
			return
		}
		switch v := msg.(type) {
		case *wire.CatchupReq:
			n.serveCatchup(in.from, v)
		case *wire.CatchupResp:
			n.handleCatchupResp(in.from, v)
		}
	case wire.KindClient:
		n.srv.Handle(in.from, in.payload)
	case wire.KindAdmin:
		n.handleAdmin(in.from, in.payload)
	default:
		// Unknown channel kind — a future minor's new sub-protocol. The
		// compat policy (wire version.go) says skip, never fail: the sender
		// knows we may not understand and gets no reply.
		n.skippedUnknown++
	}
}

// deliver moves fresh engine deliveries to the assembler queue and resolves
// receipts for own messages that completed (local delivery of an own
// message is, by the stability rule, uniform delivery). A message the
// assembler cannot rebuild — its head predates this process's delivery
// horizon — becomes a hole that a durable node repairs via catch-up before
// anything later may be applied.
func (n *Node) deliver() {
	n.delivBuf = n.engine.DrainDeliveries(n.delivBuf[:0])
	ds := n.delivBuf
	if len(ds) == 0 {
		return
	}
	now := time.Now()
	var dropSeq, horizonSeq uint64
	n.outMu.Lock()
	asm := n.asm()
	for _, d := range ds {
		msg, res := asm.add(d)
		if res != asmComplete {
			if res == asmDropped && msg.Seq > n.applied {
				if n.wlog != nil {
					dropSeq = msg.Seq
				} else {
					horizonSeq = msg.Seq // ephemeral: an unservable hole
				}
			}
			continue
		}
		if msg.Origin == n.cfg.Self {
			if pr, ok := n.receipts[msg.LogicalID]; ok {
				delete(n.receipts, msg.LogicalID)
				n.recordLatency(now.Sub(pr.submitted))
				pr.r.resolve(msg.Seq)
			}
		}
		n.outBuf = append(n.outBuf, msg)
	}
	if dropSeq > 0 {
		// Hold the pump before releasing the lock: nothing live may be
		// applied until catch-up fills the hole (the transfer re-covers
		// any overlap, which the pump deduplicates).
		n.catching = true
	}
	n.outCond.Signal()
	n.outMu.Unlock()
	clear(ds) // release Body references held in the reused drain buffer
	if dropSeq > 0 {
		n.extendCatchup(dropSeq)
	}
	if horizonSeq > 0 {
		n.sess.raiseHorizon(horizonSeq)
	}
}

// asm lazily allocates the assembler (guarded by outMu).
func (n *Node) asm() *assembler {
	if n.asmState == nil {
		n.asmState = newAssembler()
	}
	return n.asmState
}

// --- Catch-up: fetching the missed suffix of the total order -------------
//
// A durable node that rejoins behind the group (its WAL ends at K, the
// installed view's sync starts at S > K+1) owes its state machine the
// messages in between — they are uniform, every survivor delivered them,
// but the ring will never carry them again. The node asks the current
// members (leader first) for that range, applies the transferred history
// through the same durable pipeline as live traffic, and only then lets
// the live stream flow. All methods below run on the event loop.

// refreshCatchup runs at every view install. A hole exists exactly when
// the sync base passed this node's delivery cursor (prevNext <
// sync.StartSeq): messages in [prevNext, StartSeq) were delivered by the
// group while this process was down — it rejoined or was freshly admitted
// below the base — and will never arrive through ring traffic. The
// preserved sequenced run at or above the base is NOT a hole even though
// installing it advances NextDeliver: those segments sit in the engine's
// delivery buffer on their way to this node's own pump. (Treating that
// advance as a hole would, on a view change landing mid-traffic, hold
// every survivor's pump for a transfer no peer can serve — nobody has
// applied the in-flight run yet — deadlocking the whole group; the chaos
// harness finds this within seconds.) Ordinary pump lag is likewise not a
// hole. When a catch-up is already in flight, the peer set is refreshed so
// a crashed server is abandoned.
func (n *Node) refreshCatchup(v core.View, sync *core.Sync, prevNext uint64) {
	if n.wlog == nil {
		// An ephemeral member joining below the sync base will never see
		// the skipped prefix: its subscriber horizon rises past it, so
		// offset subscriptions are redirected to a member that has it.
		if sync.StartSeq > prevNext && sync.StartSeq > 0 {
			n.sess.raiseHorizon(sync.StartSeq - 1)
		}
		return
	}
	base := sync.StartSeq
	if base <= prevNext && n.catch == nil {
		return // base did not pass the cursor: nothing is missing
	}
	target := base - 1
	// A message straddling the sync base — its head delivered before the
	// base, its tail preserved above it — can never be reassembled from
	// live traffic here; extend the catch-up horizon past its final
	// segment so the transfer covers it.
	for _, m := range sync.Sequenced {
		if m.Seq < base {
			continue
		}
		if m.Seq == base && m.Part > 0 {
			target = m.Seq + uint64(m.Parts-1-m.Part)
		}
		break
	}
	var peers []ProcID
	for _, p := range v.Ring.Members() {
		if p != n.cfg.Self {
			peers = append(peers, p)
		}
	}
	if n.catch == nil {
		if n.Applied() >= target {
			return // the skipped range was already applied before the crash
		}
		n.catch = &catchState{after: n.Applied()}
	}
	c := n.catch
	c.target = max(c.target, target)
	c.peers = peers
	c.idx = 0
	c.unavail = 0
	n.outMu.Lock()
	n.catching = true
	n.outMu.Unlock()
	n.log.Info("catch-up start",
		"epoch", v.ID, "after", c.after, "target", c.target, "peers", len(peers))
	n.sendCatchupReq()
}

// extendCatchup raises the catch-up horizon to cover a message the
// assembler had to drop (deliver detected the hole and already set the
// pump hold under outMu).
func (n *Node) extendCatchup(target uint64) {
	if n.catch == nil {
		n.catch = &catchState{after: n.Applied(), peers: n.catchupPeers(n.mgr.View())}
		n.log.Info("catch-up start",
			"epoch", n.CurrentView().ID, "after", n.catch.after, "target", target,
			"peers", len(n.catch.peers), "reason", "assembler hole")
	}
	if target > n.catch.target {
		n.catch.target = target
	}
	n.sendCatchupReq()
}

// catchupPeers lists the candidate catch-up servers: the view's members
// in ring order (leader first), excluding self.
func (n *Node) catchupPeers(v core.View) []ProcID {
	var peers []ProcID
	for _, p := range v.Ring.Members() {
		if p != n.cfg.Self {
			peers = append(peers, p)
		}
	}
	return peers
}

// sendCatchupReq asks the current candidate peer for the next page, or
// finishes the catch-up when the need has disappeared.
func (n *Node) sendCatchupReq() {
	c := n.catch
	if c == nil {
		return
	}
	after := max(n.Applied(), c.after)
	if after >= c.target || len(c.peers) == 0 {
		// Nothing (more) to fetch — or nobody to ask: a singleton view
		// serves itself by definition of uniformity.
		n.finishCatchup()
		return
	}
	c.lastSend = time.Now()
	payload := wire.EncodeCatchupReq(&wire.CatchupReq{After: after, UpTo: c.target})
	_ = n.tr.Send(c.peers[c.idx], payload) // silence heals via tick retry
}

// finishCatchup releases the live stream.
func (n *Node) finishCatchup() {
	if n.catch != nil {
		n.log.Info("catch-up finish",
			"epoch", n.CurrentView().ID, "after", n.catch.after, "target", n.catch.target)
	}
	n.catch = nil
	n.outMu.Lock()
	if n.catching {
		n.catching = false
		n.outCond.Signal()
	}
	n.outMu.Unlock()
}

// tickCatchup retries a stalled transfer: the serving peer may have
// crashed (rotate to the next candidate) or may itself still be applying
// the range we need (ask again).
func (n *Node) tickCatchup(now time.Time) {
	c := n.catch
	if c == nil || now.Sub(c.lastSend) < n.cfg.ChangeTimeout {
		return
	}
	if n.Applied() >= c.target {
		n.finishCatchup()
		return
	}
	if n.catchBacklog() >= catchupMaxBacklog {
		return // still draining the last pages; check again next tick
	}
	if len(c.peers) > 1 {
		c.idx = (c.idx + 1) % len(c.peers)
	}
	n.sendCatchupReq()
}

// serveCatchup answers a peer's request for recovered history out of this
// node's durable log. The log maintains a simple invariant — WriteSnapshot
// removes every entry at or below the snapshot, so retained entries are
// complete above the latest snapshot and the snapshot covers everything
// below it. Serving therefore needs no gap heuristics (entry sequence
// numbers are sparse — one entry per message, keyed by its final
// segment): a requester below the snapshot gets the snapshot plus the
// entries above it, anyone else gets entries only. This runs on the event
// loop: the page caps (and the log's resume hint) bound the synchronous
// disk work per request, a deliberate trade against the complexity of an
// off-loop serving goroutine.
func (n *Node) serveCatchup(from ProcID, req *wire.CatchupReq) {
	if n.wlog == nil {
		_ = n.tr.Send(from, wire.EncodeCatchupResp(&wire.CatchupResp{Unavailable: true}))
		return
	}
	resp := &wire.CatchupResp{UpTo: req.UpTo, Ceiling: n.catchupCeiling()}
	after := req.After
	if snap, ok := n.wlog.LatestSnapshot(); ok && snap.Seq > after {
		resp.HasSnapshot = true
		resp.SnapSeq = snap.Seq
		resp.Snapshot = snap.Data
		after = snap.Seq
	}
	if after < req.UpTo {
		entries, more, err := n.wlog.ReadFrom(after, req.UpTo, catchupMaxEntries, catchupMaxBytes)
		if err != nil {
			n.fail(err) // local disk corruption is fatal (fail-stop)
			return
		}
		resp.More = more
		resp.Entries = make([]wire.CatchupEntry, len(entries))
		for i, e := range entries {
			resp.Entries[i] = wire.CatchupEntry{
				Seq:       e.Seq,
				Origin:    ProcID(e.Origin),
				LogicalID: e.LogicalID,
				Payload:   e.Payload,
			}
		}
	}
	_ = n.tr.Send(from, wire.EncodeCatchupResp(resp))
}

// catchupCeiling computes the authority bound this node can attach to a
// catch-up response: the highest sequence number below which every entry
// that will EVER exist is already in its durable log. With the delivery
// pipeline fully drained (no buffered deliveries, no batch mid-persist, no
// catch-up of its own) that is everything below the engine's delivery
// cursor — sequence numbers under it with no log entry were consumed by
// segments of broadcasts that never completed anywhere (an origin crashed
// mid-message) and are permanently dead. With work still in flight the
// node vouches only for what it has applied. Event-loop context.
func (n *Node) catchupCeiling() uint64 {
	n.outMu.Lock()
	idle := len(n.outBuf) == 0 && len(n.catchBuf) == 0 && !n.catching && !n.pumpBusy
	applied := n.applied
	n.outMu.Unlock()
	// Deliveries still buffered inside the engine (produced by earlier
	// frames of this drain batch, not yet pulled by deliver) are in-flight
	// work too: vouching past them would declare entries dead that are
	// minutes — or microseconds — from existing.
	if idle && n.engine.PendingDeliveries() == 0 {
		return n.engine.NextDeliver() - 1
	}
	return applied
}

// handleCatchupResp feeds one page of recovered history to the pump and
// drives the transfer forward.
func (n *Node) handleCatchupResp(from ProcID, resp *wire.CatchupResp) {
	c := n.catch
	if c == nil || len(c.peers) == 0 || from != c.peers[c.idx] {
		return // stale response from an earlier attempt
	}
	if resp.Unavailable {
		c.unavail++
		if c.unavail >= len(c.peers) {
			// Nobody in the view keeps history: proceed with the gap, the
			// documented semantics of joining without a state transfer.
			n.finishCatchup()
			return
		}
		c.idx = (c.idx + 1) % len(c.peers)
		n.sendCatchupReq()
		return
	}
	c.unavail = 0
	var items []catchItem
	if resp.HasSnapshot && resp.SnapSeq > c.after {
		items = append(items, catchItem{snap: &wal.Snapshot{Seq: resp.SnapSeq, Data: resp.Snapshot}})
		c.after = resp.SnapSeq
	}
	for i := range resp.Entries {
		e := &resp.Entries[i]
		items = append(items, catchItem{msg: Message{
			Seq:       e.Seq,
			Origin:    e.Origin,
			LogicalID: e.LogicalID,
			Payload:   e.Payload,
		}})
		if e.Seq > c.after {
			c.after = e.Seq
		}
		// An own broadcast can come back through recovery: it was
		// sequenced and delivered by the group while this node lagged
		// behind a view change, and a sync rebase kept its identity out of
		// live re-dissemination here. Its uniform delivery is a fact —
		// resolve the receipt (live deliveries resolve via deliver).
		if e.Origin == n.cfg.Self {
			if pr, ok := n.receipts[e.LogicalID]; ok {
				delete(n.receipts, e.LogicalID)
				pr.r.resolve(e.Seq)
			}
		}
	}
	if len(items) > 0 {
		n.outMu.Lock()
		n.catchBuf = append(n.catchBuf, items...)
		n.outCond.Signal()
		n.outMu.Unlock()
	}
	switch {
	case c.after >= c.target:
		n.finishCatchup()
	case resp.More:
		if n.catchBacklog() < catchupMaxBacklog {
			n.sendCatchupReq()
		}
		// Else: backpressure — the tick resumes paging once the pump has
		// worked through the buffered history.
	case resp.UpTo >= c.target && resp.Ceiling >= c.target:
		// The server handed over everything it holds in a range covering
		// our whole target (resp.UpTo guards against this page answering an
		// earlier, shorter request — the target can grow while a request is
		// in flight) and is authoritative through it: the sequence numbers
		// still missing are dead (segments of broadcasts that never
		// completed), not late. Waiting for them would wedge this node
		// forever.
		n.finishCatchup()
	default:
		// The peer has served everything it holds but the target is still
		// ahead (it is applying the same traffic we are waiting for); the
		// tick retries shortly.
	}
}

// catchBacklog reports how many recovered messages await the pump.
func (n *Node) catchBacklog() int {
	n.outMu.Lock()
	defer n.outMu.Unlock()
	return len(n.catchBuf)
}

// closeDeliveries wakes the delivery pump for shutdown.
func (n *Node) closeDeliveries() {
	n.outMu.Lock()
	n.outDone = true
	n.outCond.Signal()
	n.outMu.Unlock()
}

// deliveryPump moves reassembled messages from the unbounded buffer to the
// consumers — the durable log and state machine first, then Subscribe
// handlers or the Messages channel — so slow consumers cannot stall the
// protocol loop. Each batch is persisted (one fsync) before any of it is
// dispatched: nothing an application ever observed can be lost by a crash.
//
// While a catch-up transfer is in flight the live stream is held back and
// only recovered history (catchBuf) is applied, so the state machine never
// sees the order with a gap; recovered messages reach the state machine
// but not Subscribe/Messages — the live stream resumes once the node has
// caught up.
func (n *Node) deliveryPump() {
	defer n.wg.Done()
	defer close(n.msgs)
	for {
		n.outMu.Lock()
		for !n.pumpReadyLocked() && !n.outDone && !n.snapPend {
			n.outCond.Wait()
		}
		recovered := n.catchBuf
		n.catchBuf = nil
		var live []Message
		if !n.catching {
			live = n.outBuf
			n.outBuf = nil
		}
		done := n.outDone
		forceSnap := n.snapPend
		n.snapPend = false
		n.pumpBusy = len(recovered) > 0 || len(live) > 0
		n.outMu.Unlock()
		if len(recovered) == 0 && len(live) == 0 && !forceSnap {
			if done {
				return
			}
			continue
		}
		if err := n.applyBatch(recovered, live, forceSnap); err != nil {
			n.fail(err)
			return
		}
	}
}

// pumpReadyLocked reports whether the pump has something processable.
// Callers hold outMu.
func (n *Node) pumpReadyLocked() bool {
	return len(n.catchBuf) > 0 || (!n.catching && len(n.outBuf) > 0)
}

// applyBatch runs one pump batch through the durability pipeline: open
// each message's envelope (filtering duplicate client publishes out of the
// order — a deterministic decision, every member's index evolves from the
// same applied prefix), append every surviving message to the WAL, fsync
// once, fold into the state machine, then acknowledge the batch's client
// publishes, dispatch the live messages and take a snapshot if the cadence
// is due.
//
// Recovered history and live messages are merged by sequence number (both
// streams arrive ascending), so the state machine always sees the total
// order: a view change can leave not-yet-applied live deliveries below the
// recovered range in flight. Where the streams overlap, the live copy wins
// — it is the one that reaches Subscribe/Messages — and the duplicate is
// skipped by the cursor. Pump goroutine only.
func (n *Node) applyBatch(recovered []catchItem, live []Message, forceSnap bool) error {
	// n.applied is written under outMu but only ever by this goroutine,
	// so reading it unlocked here is race-free.
	cursor := n.applied
	var dispatch []Message
	var finals []Message // applied messages in final form, for the memlog
	var acks []pubAck
	appended := false
	snapJump := false // a snapshot transfer advanced the cursor past entries
	apply := func(m Message, isLive bool) error {
		if m.Seq <= cursor {
			return nil // already recovered (replay / catch-up overlap)
		}
		// Live messages carry the ring envelope; recovered history arrives
		// in final form from a peer's (already filtered) log.
		final, dup, ack := n.sess.classify(m, isLive)
		if ack != nil {
			acks = append(acks, *ack)
		}
		cursor = m.Seq
		if dup {
			return nil // duplicate client publish: filtered from the order
		}
		if n.wlog != nil {
			err := n.wlog.Append(wal.Entry{
				Seq:       final.Seq,
				Origin:    uint32(final.Origin),
				LogicalID: final.LogicalID,
				Payload:   final.Payload,
			})
			if err != nil {
				return err
			}
			appended = true
		}
		if n.sm != nil {
			n.sm.Apply(final)
		}
		n.sinceSnap++
		finals = append(finals, final)
		if isLive {
			dispatch = append(dispatch, final)
		}
		return nil
	}
	applyRecovered := func(it catchItem) error {
		if it.snap == nil {
			return apply(it.msg, false)
		}
		if it.snap.Seq <= cursor {
			return nil // stale transfer; local state is already past it
		}
		// A transferred snapshot is node-level: publish index + app state.
		idxBytes, app := openSnapshot(it.snap.Data)
		if idxBytes != nil {
			n.sess.restoreIndex(idxBytes)
		}
		if n.sm != nil {
			if err := n.sm.Restore(app); err != nil {
				return fmt.Errorf("fsr: restore transferred snapshot at %d: %w", it.snap.Seq, err)
			}
		}
		if n.wlog != nil {
			if err := n.wlog.WriteSnapshot(it.snap.Seq, it.snap.Data); err != nil {
				return err
			}
		}
		cursor = it.snap.Seq
		snapJump = true
		n.sinceSnap = 0
		return nil
	}
	ri, li := 0, 0
	for ri < len(recovered) || li < len(live) {
		// A snapshot transfer always goes first: live messages at or below
		// its seq are part of the state it carries, and applying them first
		// would push the cursor past the snapshot, discarding the transfer
		// and leaving the gap below it unfilled forever. For plain messages
		// <= means live wins ties, so the copy that dispatches is the one
		// applied (the recovered duplicate is skipped by the cursor).
		takeLive := li < len(live) &&
			(ri == len(recovered) ||
				(recovered[ri].snap == nil && live[li].Seq <= recovered[ri].msg.Seq))
		if takeLive {
			if err := apply(live[li], true); err != nil {
				return err
			}
			li++
			continue
		}
		if err := applyRecovered(recovered[ri]); err != nil {
			return err
		}
		ri++
	}
	if appended {
		if err := n.wlog.Sync(); err != nil {
			return err
		}
	}
	// The ephemeral order tail must hold the batch before applied covers
	// it, or a subscription pager could skip it (it pages up to applied).
	n.sess.retainBatch(finals)
	n.outMu.Lock()
	n.applied = cursor
	n.pumpBusy = false // batch durable: applied now covers it
	n.outMu.Unlock()
	// Batch durable and visible: wake subscription pagers, acknowledge the
	// client publishes it committed, and fan the batch out to attached
	// subscribers (one encode for all of them).
	n.sess.commitBatch(acks)
	n.publishTail(finals, snapJump)
	for _, m := range dispatch {
		n.dispatch(m)
	}
	if n.wlog != nil && n.sm != nil &&
		(n.sinceSnap >= n.cfg.SnapshotEvery || (forceSnap && cursor > 0)) {
		data, err := n.sm.Snapshot()
		if err != nil {
			return fmt.Errorf("fsr: state machine snapshot: %w", err)
		}
		if err := n.wlog.WriteSnapshot(cursor, wrapSnapshot(n.sess.snapshotIndex(), data)); err != nil {
			return err
		}
		n.sinceSnap = 0
	}
	return nil
}

// dispatch hands one message to the current consumption mode. A blocked
// channel send re-evaluates when the subscriber set changes, so a consumer
// that subscribes mid-stream takes over from the channel immediately.
// With a StateMachine attached, the state machine (already fed by
// applyBatch) is the consumer of record: the Messages channel is not used
// unless a Subscribe handler is registered, so an application that never
// drains the channel cannot wedge delivery.
func (n *Node) dispatch(m Message) {
	for {
		n.subMu.Lock()
		subs := n.subs
		changed := n.subChanged
		n.subMu.Unlock()
		if len(subs) == 0 && n.sm != nil {
			return
		}
		if len(subs) > 0 {
			if n.stopping() {
				return // drop, matching channel-mode shutdown semantics
			}
			for _, s := range subs {
				s.fn(m)
			}
			return
		}
		if !n.msgsClaimed.Load() {
			// Nobody has claimed the channel: fill its buffer for a late
			// claimant, but never block the pump on it (a member serving
			// only sessions has no channel reader at all).
			select {
			case n.msgs <- m:
			default:
			}
			return
		}
		select {
		case n.msgs <- m:
			return
		case <-changed:
			// Subscriber set changed; re-evaluate the mode.
		case <-n.stop:
			return // drain silently on shutdown
		}
	}
}
