package fsr

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"fsr/internal/core"
	"fsr/internal/fd"
	"fsr/internal/ring"
	"fsr/internal/vsc"
	"fsr/internal/wire"
	"fsr/transport"
)

// ViewInfo describes one installed membership epoch.
type ViewInfo struct {
	// ID is the view epoch.
	ID uint64
	// Members is the agreed ring order; Members[0] is the leader.
	Members []ProcID
	// T is the number of failures this view tolerates.
	T int
}

// latencyWindow bounds how many broadcast-latency samples a node retains
// for Metrics.BroadcastLatency.
const latencyWindow = 1024

// Node is one FSR group member: it owns the protocol engine, the failure
// detector and the view-change manager, and drives them over a transport.
//
// All protocol work happens on one event-loop goroutine; the public methods
// communicate with it through channels, so a Node is safe for concurrent
// use.
type Node struct {
	cfg Config
	tr  transport.Transport

	engine *core.Engine
	mgr    *vsc.Manager
	fdet   *fd.Detector

	inbox  chan inboundPayload
	bcast  chan bcastReq
	joinc  chan []ProcID
	leave  chan struct{}
	rotate chan struct{}
	statsc chan chan Metrics
	stop   chan struct{}

	msgs  chan Message
	views chan ViewInfo

	outMu    sync.Mutex
	outCond  *sync.Cond
	outBuf   []Message
	outDone  bool
	asmState *assembler

	subMu      sync.Mutex
	subs       []subscriber
	nextSubID  uint64
	subChanged chan struct{}

	// Event-loop-owned state (no locking): receipts for own broadcasts,
	// keyed by logical message ID, and the latency sample window.
	receipts map[uint64]pendingReceipt
	latency  []time.Duration
	latNext  int

	wg       sync.WaitGroup
	stopOnce sync.Once

	mu       sync.Mutex
	joined   bool
	evicted  bool
	err      error
	lastView ViewInfo
}

type inboundPayload struct {
	from    ProcID
	payload []byte
}

type bcastReq struct {
	payload []byte
	resp    chan bcastResp
}

type bcastResp struct {
	receipt *Receipt
	err     error
}

type pendingReceipt struct {
	r         *Receipt
	submitted time.Time
}

type subscriber struct {
	id uint64
	fn func(Message)
}

// NewNode builds and starts a node on the given transport. The transport's
// Self must match cfg.Self.
func NewNode(cfg Config, tr transport.Transport) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tr.Self() != cfg.Self {
		return nil, fmt.Errorf("fsr: transport self %d != config self %d", tr.Self(), cfg.Self)
	}
	view, err := cfg.initialView()
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(core.Config{
		Self:         cfg.Self,
		SegmentSize:  cfg.SegmentSize,
		MaxPiggyback: cfg.MaxPiggyback,
	}, view)
	if err != nil {
		return nil, err
	}

	n := &Node{
		cfg:        cfg,
		tr:         tr,
		engine:     engine,
		inbox:      make(chan inboundPayload, 4096),
		bcast:      make(chan bcastReq),
		joinc:      make(chan []ProcID, 1),
		leave:      make(chan struct{}, 1),
		rotate:     make(chan struct{}, 1),
		statsc:     make(chan chan Metrics),
		stop:       make(chan struct{}),
		msgs:       make(chan Message, 256),
		views:      make(chan ViewInfo, 64),
		subChanged: make(chan struct{}),
		receipts:   make(map[uint64]pendingReceipt),
		joined:     !cfg.Joiner,
		lastView:   viewInfo(view),
	}
	n.outCond = sync.NewCond(&n.outMu)

	n.fdet, err = fd.New(fd.Config{
		Self:     cfg.Self,
		Interval: cfg.HeartbeatInterval,
		Timeout:  cfg.FailureTimeout,
		Send: func(to ring.ProcID, payload []byte) {
			_ = n.tr.Send(to, payload) // silence is what the FD detects
		},
		Suspect: func(p ring.ProcID) {
			// Called from within the loop's fdet.Tick.
			n.mgr.OnSuspect(p, time.Now())
		},
	})
	if err != nil {
		return nil, err
	}

	n.mgr, err = vsc.NewManager(vsc.Config{
		Self:          cfg.Self,
		T:             cfg.T,
		ChangeTimeout: cfg.ChangeTimeout,
		Joiner:        cfg.Joiner,
		Callbacks: vsc.Callbacks{
			Send: func(to ring.ProcID, payload []byte) {
				_ = n.tr.Send(to, payload)
			},
			Snapshot: func() core.RecoveryState { return n.engine.Snapshot() },
			Install:  n.install,
			Evicted:  n.onEvicted,
		},
	}, view)
	if err != nil {
		return nil, err
	}
	if !cfg.Joiner {
		n.fdet.SetPeers(cfg.Members, time.Now())
	}

	tr.SetHandler(func(from transport.ProcID, payload []byte) {
		select {
		case n.inbox <- inboundPayload{from: from, payload: payload}:
		case <-n.stop:
		}
	})

	n.wg.Add(2)
	go n.loop()
	go n.deliveryPump()
	return n, nil
}

// viewInfo converts an installed core view into the public shape.
func viewInfo(v core.View) ViewInfo {
	return ViewInfo{ID: v.ID, Members: v.Ring.Members(), T: v.Ring.T()}
}

// Self returns this node's process ID.
func (n *Node) Self() ProcID { return n.cfg.Self }

// Messages returns the TO-delivered message stream, in total order. The
// channel closes when the node halts. Consumers must drain it; the node
// buffers internally, so slow consumers never stall the protocol.
//
// While at least one Subscribe handler is registered, newly dispatched
// messages go to the handlers instead of this channel; the two are
// alternative consumption modes for the same ordered stream.
func (n *Node) Messages() <-chan Message { return n.msgs }

// Subscribe registers fn to receive delivered messages in total order,
// starting with the first message dispatched after registration. All
// handlers run sequentially on one dispatch goroutine (a slow handler
// delays later messages but never the protocol itself, which buffers
// internally). Handlers must return: a handler that blocks forever wedges
// delivery and Stop, and a handler must not call Stop itself. Messages
// still buffered when the node halts are dropped, as in channel mode. The
// returned cancel function unregisters fn; once no handlers remain,
// delivery reverts to the Messages channel.
func (n *Node) Subscribe(fn func(Message)) (cancel func()) {
	n.subMu.Lock()
	id := n.nextSubID
	n.nextSubID++
	n.subs = append(slices.Clone(n.subs), subscriber{id: id, fn: fn})
	n.signalSubChange()
	n.subMu.Unlock()
	return func() {
		n.subMu.Lock()
		defer n.subMu.Unlock()
		for i, s := range n.subs {
			if s.id == id {
				n.subs = slices.Delete(slices.Clone(n.subs), i, i+1)
				n.signalSubChange()
				return
			}
		}
	}
}

// signalSubChange wakes a dispatch blocked on the Messages channel so it
// re-evaluates the consumption mode. Callers hold subMu.
func (n *Node) signalSubChange() {
	close(n.subChanged)
	n.subChanged = make(chan struct{})
}

// Views returns installed-view notifications (advisory: entries are dropped
// if the consumer lags). CurrentView reports the latest view without
// consuming from this stream.
func (n *Node) Views() <-chan ViewInfo { return n.views }

// CurrentView returns the most recently installed view. Unlike Views, it
// does not consume anything and is safe to poll alongside a Views consumer.
func (n *Node) CurrentView() ViewInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := n.lastView
	v.Members = slices.Clone(v.Members)
	return v
}

// Err returns the fatal error that halted the node, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Metrics returns a coherent snapshot of the node's protocol counters,
// queue depths and broadcast latency summary, taken on the event loop. A
// halted node returns the zero Metrics.
func (n *Node) Metrics() Metrics {
	req := make(chan Metrics, 1)
	select {
	case n.statsc <- req:
		return <-req
	case <-n.stop:
		return Metrics{}
	}
}

// Broadcast submits payload for uniform total order broadcast. It returns
// once the protocol engine has accepted the message — not once delivered —
// with a Receipt that resolves at local (hence uniform) delivery. Broadcast
// blocks while the node's own-queue is at MaxPendingOwn (backpressure) and
// honors ctx cancellation while blocked; ctx does not bound delivery (use
// Receipt.Wait for that).
func (n *Node) Broadcast(ctx context.Context, payload []byte) (*Receipt, error) {
	req := bcastReq{payload: payload, resp: make(chan bcastResp, 1)}
	select {
	case n.bcast <- req:
	case <-n.stop:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp.receipt, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Join asks the group for admission (Joiner nodes only); contacts are the
// known members. It reports whether the request was accepted by the event
// loop — false means the node has halted, or an earlier join request is
// still queued and THIS call was dropped (the queued attempt keeps its own
// contact list; call Join again if yours differs). Once accepted, Join
// retries internally until admitted; admission is confirmed by a view on
// Views (or CurrentView) including this node.
func (n *Node) Join(contacts []ProcID) bool {
	if n.stopping() {
		return false
	}
	select {
	case n.joinc <- contacts:
		return true
	default:
		return false
	}
}

// Leave announces a graceful departure; the node stops once the view change
// excluding it completes (Stop is then unnecessary but harmless). It
// reports whether the request was accepted — false means the node has
// already halted, or a leave is already queued (the departure is underway
// either way).
func (n *Node) Leave() bool {
	if n.stopping() {
		return false
	}
	select {
	case n.leave <- struct{}{}:
		return true
	default:
		return false
	}
}

// RotateLeader asks for a view change that shifts the ring order by one,
// moving the sequencer role to the next process — the paper's §4.3.1
// device for evenly distributing latency across senders. Only honored when
// this node currently coordinates the group (it is the leader); a
// follower's request is silently ignored by the membership layer. It
// reports whether the request was accepted by the event loop — false means
// the node has halted, or a rotation is already queued and this one was
// coalesced.
func (n *Node) RotateLeader() bool {
	if n.stopping() {
		return false
	}
	select {
	case n.rotate <- struct{}{}:
		return true
	default:
		return false
	}
}

// Stop halts the node and closes Messages. Safe to call more than once.
func (n *Node) Stop() {
	n.halt()
	n.wg.Wait()
	_ = n.tr.Close()
}

// halt closes the stop channel exactly once; the event loop notices and
// shuts the node down.
func (n *Node) halt() {
	n.stopOnce.Do(func() { close(n.stop) })
}

// fail records a fatal protocol error and halts the node (fail-stop): the
// event loop exits, Messages closes, pending receipts fail, and the error
// surfaces via Err. Peers notice the resulting heartbeat silence and evict
// this node through a view change.
func (n *Node) fail(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
	n.halt()
}

// onEvicted handles exclusion from the group.
func (n *Node) onEvicted() {
	n.mu.Lock()
	n.evicted = true
	n.mu.Unlock()
	// Own undelivered broadcasts left the group with us; they may or may
	// not survive through other members' recovery state, so the receipts
	// resolve with an error rather than hanging forever.
	n.failReceipts(ErrStopped)
}

// install applies an agreed view: engine first, then rebroadcasts, then the
// failure detector, then the advisory notification.
func (n *Node) install(v core.View, sync *core.Sync, rebroadcast []core.PendingMsg) {
	if err := n.engine.InstallView(v, sync); err != nil {
		n.fail(err)
		return
	}
	for _, m := range rebroadcast {
		if err := n.engine.ReBroadcast(m); err != nil {
			n.fail(err)
			return
		}
	}
	n.fdet.SetPeers(v.Ring.Members(), time.Now())
	info := viewInfo(v)
	n.mu.Lock()
	n.joined = true
	n.lastView = info
	n.mu.Unlock()
	// The channel consumer owns what it receives; hand it its own Members
	// copy so mutating it cannot corrupt CurrentView/Metrics.
	info.Members = slices.Clone(info.Members)
	select {
	case n.views <- info:
	default:
	}
}

// stopping reports whether the stop channel is closed (Stop or fail).
func (n *Node) stopping() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// shutdown is the loop's single exit path: stop the engine, fail whatever
// broadcasts cannot complete, and release the delivery pump.
func (n *Node) shutdown() {
	n.engine.Stop()
	err := n.Err()
	if err == nil {
		err = ErrStopped
	}
	n.failReceipts(err)
	n.closeDeliveries()
}

// failReceipts resolves every outstanding receipt with err. Called from the
// event loop (shutdown, eviction).
func (n *Node) failReceipts(err error) {
	for id, pr := range n.receipts {
		pr.r.fail(err)
		delete(n.receipts, id)
	}
}

// loop is the single event-loop goroutine owning all protocol state.
//
// Each iteration first drains all queued inbound payloads (so the engine
// sees the current ring state), then transmits at most one frame. The
// transport's pacing — NIC serialization, socket-buffer backpressure —
// therefore throttles the loop between frames, which is exactly what lets
// the paper's fairness rule interleave relayed traffic with own messages
// instead of flushing whole own-queues in one burst.
func (n *Node) loop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	var joinContacts []ProcID
	lastJoin := time.Time{}
	for {
		if n.stopping() {
			n.shutdown()
			return
		}
	drain:
		for {
			select {
			case in := <-n.inbox:
				n.handlePayload(in)
				if n.stopping() {
					n.shutdown()
					return
				}
			default:
				break drain
			}
		}
		n.deliver()
		if n.sendOne() {
			continue
		}

		// Backpressure: stop accepting broadcasts while the own-queue is
		// full, the node has not joined yet, or a view change is in
		// flight. An evicted node keeps accepting so it can reject with
		// an error instead of blocking.
		bc := n.bcast
		n.mu.Lock()
		joined, evicted := n.joined, n.evicted
		n.mu.Unlock()
		if !evicted && (n.engine.PendingOwn() >= n.cfg.MaxPendingOwn || !joined || n.mgr.Changing()) {
			bc = nil
		}

		select {
		case <-n.stop:
			n.shutdown()
			return

		case in := <-n.inbox:
			n.handlePayload(in)

		case req := <-bc:
			if evicted {
				req.resp <- bcastResp{err: ErrStopped}
				break
			}
			first, err := n.engine.Broadcast(req.payload)
			if err != nil {
				req.resp <- bcastResp{err: err}
				break
			}
			r := newReceipt()
			n.receipts[first.Local] = pendingReceipt{r: r, submitted: time.Now()}
			req.resp <- bcastResp{receipt: r}

		case contacts := <-n.joinc:
			joinContacts = contacts
			n.mgr.RequestJoin(contacts)
			lastJoin = time.Now()

		case <-n.leave:
			n.mgr.RequestLeave()

		case <-n.rotate:
			n.mgr.RotateLeader(time.Now())

		case req := <-n.statsc:
			req <- n.snapshotMetrics()

		case now := <-tick.C:
			n.fdet.Tick(now)
			n.mgr.Tick(now)
			n.mu.Lock()
			joined := n.joined
			n.mu.Unlock()
			if !joined && joinContacts != nil && now.Sub(lastJoin) > n.cfg.ChangeTimeout {
				n.mgr.RequestJoin(joinContacts)
				lastJoin = now
			}
		}
	}
}

// snapshotMetrics assembles a Metrics snapshot. Event-loop context only.
func (n *Node) snapshotMetrics() Metrics {
	st := n.engine.Stats()
	relay, own, acks := n.engine.QueueDepths()
	return Metrics{
		View:             n.CurrentView(),
		IsLeader:         n.engine.IsLeader(),
		FramesIn:         st.FramesIn,
		FramesOut:        st.FramesOut,
		DataIn:           st.DataIn,
		AcksIn:           st.AcksIn,
		Sequenced:        st.Sequenced,
		Delivered:        st.Delivered,
		StaleFrames:      st.StaleFrames,
		RelayedData:      st.RelayedData,
		OwnSent:          st.OwnSent,
		FairnessSkips:    st.FairnessSkips,
		StandaloneAcks:   st.StandaloneAcks,
		RelayQueue:       relay,
		OwnQueue:         own,
		AckQueue:         acks,
		PendingReceipts:  len(n.receipts),
		BroadcastLatency: summarizeLatency(n.latency),
	}
}

// recordLatency folds one acceptance-to-delivery sample into the bounded
// window. Event-loop context only.
func (n *Node) recordLatency(d time.Duration) {
	if len(n.latency) < latencyWindow {
		n.latency = append(n.latency, d)
		return
	}
	n.latency[n.latNext] = d
	n.latNext = (n.latNext + 1) % latencyWindow
}

// sendOne transmits at most one outbound frame; it reports whether it did.
func (n *Node) sendOne() bool {
	if n.mgr.Changing() {
		return false
	}
	r := n.mgr.View().Ring
	succ, ok := r.Successor(n.cfg.Self)
	if !ok || succ == n.cfg.Self {
		return false
	}
	f, ok := n.engine.NextFrame()
	if !ok {
		return false
	}
	if err := n.tr.Send(succ, wire.EncodeFrame(f)); err != nil {
		return false // successor unreachable: the FD takes it from here
	}
	n.deliver()
	return true
}

// handlePayload dispatches one transport payload by channel kind.
func (n *Node) handlePayload(in inboundPayload) {
	if len(in.payload) == 0 {
		return
	}
	switch in.payload[0] {
	case wire.KindFSR:
		f, err := wire.DecodeFrame(in.payload)
		if err != nil {
			n.fail(err)
			return
		}
		if err := n.engine.HandleFrame(f); err != nil {
			n.fail(err)
			return
		}
	case wire.KindVSC:
		if err := n.mgr.HandlePayload(in.from, in.payload, time.Now()); err != nil {
			n.fail(err)
			return
		}
	case wire.KindFD:
		from, err := fd.Decode(in.payload)
		if err != nil {
			return // malformed heartbeat: ignore
		}
		n.fdet.HandleHeartbeat(from, time.Now())
	}
}

// deliver moves fresh engine deliveries to the assembler queue and resolves
// receipts for own messages that completed (local delivery of an own
// message is, by the stability rule, uniform delivery).
func (n *Node) deliver() {
	ds := n.engine.Deliveries()
	if len(ds) == 0 {
		return
	}
	now := time.Now()
	n.outMu.Lock()
	asm := n.asm()
	for _, d := range ds {
		msg, done := asm.add(d)
		if !done {
			continue
		}
		if msg.Origin == n.cfg.Self {
			if pr, ok := n.receipts[msg.LogicalID]; ok {
				delete(n.receipts, msg.LogicalID)
				n.recordLatency(now.Sub(pr.submitted))
				pr.r.resolve(msg.Seq)
			}
		}
		n.outBuf = append(n.outBuf, msg)
	}
	n.outCond.Signal()
	n.outMu.Unlock()
}

// asm lazily allocates the assembler (guarded by outMu).
func (n *Node) asm() *assembler {
	if n.asmState == nil {
		n.asmState = newAssembler()
	}
	return n.asmState
}

// closeDeliveries wakes the delivery pump for shutdown.
func (n *Node) closeDeliveries() {
	n.outMu.Lock()
	n.outDone = true
	n.outCond.Signal()
	n.outMu.Unlock()
}

// deliveryPump moves reassembled messages from the unbounded buffer to the
// consumers — Subscribe handlers when any are registered, the Messages
// channel otherwise — so slow consumers cannot stall the protocol loop.
func (n *Node) deliveryPump() {
	defer n.wg.Done()
	defer close(n.msgs)
	for {
		n.outMu.Lock()
		for len(n.outBuf) == 0 && !n.outDone {
			n.outCond.Wait()
		}
		if len(n.outBuf) == 0 && n.outDone {
			n.outMu.Unlock()
			return
		}
		batch := n.outBuf
		n.outBuf = nil
		n.outMu.Unlock()
		for _, m := range batch {
			n.dispatch(m)
		}
	}
}

// dispatch hands one message to the current consumption mode. A blocked
// channel send re-evaluates when the subscriber set changes, so a consumer
// that subscribes mid-stream takes over from the channel immediately.
func (n *Node) dispatch(m Message) {
	for {
		n.subMu.Lock()
		subs := n.subs
		changed := n.subChanged
		n.subMu.Unlock()
		if len(subs) > 0 {
			if n.stopping() {
				return // drop, matching channel-mode shutdown semantics
			}
			for _, s := range subs {
				s.fn(m)
			}
			return
		}
		select {
		case n.msgs <- m:
			return
		case <-changed:
			// Subscriber set changed; re-evaluate the mode.
		case <-n.stop:
			return // drain silently on shutdown
		}
	}
}
