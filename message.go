package fsr

import (
	"fsr/internal/core"
	"fsr/internal/wire"
)

// Message is one fully reassembled application message, TO-delivered in the
// same total order at every group member.
type Message struct {
	// Seq is the global sequence number of the message's final segment —
	// its position (offset) in the total order (identical at every process
	// within an epoch).
	Seq uint64
	// Origin is the publishing process: the broadcasting ring member, or —
	// for messages published through a Session client — the client's ID
	// (>= ClientIDBase).
	Origin ProcID
	// LogicalID names the broadcast uniquely together with Origin, across
	// views and retries: the wire identity of the message's first segment
	// for member broadcasts, the client-assigned publish ID for session
	// publishes.
	LogicalID uint64
	// Payload is the reassembled application payload. The receiver owns it.
	Payload []byte
	// Snapshot marks a state transfer on a subscription stream only: a
	// Subscribe that resumed below the group's log truncation point starts
	// with one pair whose Payload is the application snapshot covering
	// every message up to Seq. Never set on Messages/StateMachine
	// deliveries.
	Snapshot bool
}

// asmResult classifies what one delivered segment did to its logical
// message.
type asmResult int

const (
	// asmPending: the message is still missing later parts.
	asmPending asmResult = iota
	// asmComplete: the segment completed the message.
	asmComplete
	// asmDropped: the segment ended a message whose earlier parts predate
	// this process's delivery horizon (it joined mid-message), so the
	// message cannot be reassembled here. A durable node repairs the hole
	// through catch-up; an ephemeral joiner simply never sees the message
	// (it missed everything before its join anyway).
	asmDropped
)

// assembler re-joins segmented broadcasts. Segments of one logical message
// share an origin and consecutive origin-local IDs; per-origin FIFO delivery
// guarantees they arrive in part order, so the logical message completes
// exactly when its last part is delivered — at the same point in the total
// order on every process.
type assembler struct {
	partial  map[wire.MsgID][][]byte // keyed by first segment's ID
	poisoned map[wire.MsgID]bool     // straddling messages with lost heads
}

func newAssembler() *assembler {
	return &assembler{
		partial:  make(map[wire.MsgID][][]byte),
		poisoned: make(map[wire.MsgID]bool),
	}
}

// add folds one delivered segment, returning the completed message when
// the segment was the last piece (asmComplete).
func (a *assembler) add(d core.Delivery) (Message, asmResult) {
	logical := wire.MsgID{Origin: d.ID.Origin, Local: d.ID.Local - uint64(d.Part)}
	if d.Parts <= 1 {
		return Message{
			Seq:       d.Seq,
			Origin:    d.ID.Origin,
			LogicalID: logical.Local,
			Payload:   d.Body,
		}, asmComplete
	}
	last := int(d.Part) == int(d.Parts)-1
	if a.poisoned[logical] {
		if last {
			delete(a.poisoned, logical)
			return Message{Seq: d.Seq}, asmDropped
		}
		return Message{}, asmPending
	}
	parts := a.partial[logical]
	if parts == nil {
		if d.Part != 0 {
			// First sighting is a non-head part: the head was delivered
			// before this process's horizon and will never arrive.
			if last {
				return Message{Seq: d.Seq}, asmDropped
			}
			a.poisoned[logical] = true
			return Message{}, asmPending
		}
		parts = make([][]byte, d.Parts)
		a.partial[logical] = parts
	}
	if int(d.Part) < len(parts) {
		parts[d.Part] = d.Body
	}
	if !last {
		return Message{}, asmPending
	}
	// Final part: all earlier parts have been delivered (per-origin FIFO).
	var size int
	for _, p := range parts {
		size += len(p)
	}
	payload := make([]byte, 0, size)
	for _, p := range parts {
		payload = append(payload, p...)
	}
	delete(a.partial, logical)
	return Message{
		Seq:       d.Seq,
		Origin:    d.ID.Origin,
		LogicalID: logical.Local,
		Payload:   payload,
	}, asmComplete
}
