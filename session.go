package fsr

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/wire"
)

// Offset is a position in the delivered total order: the sequence number a
// message was committed at. Offsets are strictly increasing but sparse —
// multi-segment messages consume several protocol sequence numbers, and a
// deduplicated client publish consumes one without producing a message —
// so consumers resume with "last offset seen + 1", never by arithmetic.
type Offset = uint64

// ClientIDBase splits the process ID space: IDs at or above it identify
// session clients (non-member publishers/subscribers), IDs below it ring
// members. A client keeps one ID for its lifetime — it is the dedup
// identity that makes publish retries across member crashes idempotent —
// and IDs must be unique across concurrently live clients.
const ClientIDBase ProcID = 1 << 31

// Session is the one way to use the total order, in process or remote.
//
// A Session decouples consuming the order from being a ring member: ring
// members get one with Node.Session, and non-member clients get the
// identical interface from client.Dial (over TCP) or Cluster.Dial (over
// any ClusterTransport) — examples, tests and applications are written
// once against it. Remote sessions survive the serving member crashing:
// publishes are retried idempotently against another member and
// subscriptions resume from their last offset, gap-free.
type Session interface {
	// Publish submits one payload for uniform total order broadcast. It
	// returns once the session has accepted the message — publishes are
	// pipelined, and Publish blocks (honoring ctx) only while the
	// session's in-flight window is full. The Receipt resolves when the
	// message is committed: durable at the serving member and uniformly
	// delivered, with Seq reporting its offset. Remote sessions deliver
	// each accepted publish exactly once even across member crashes and
	// redirects (client-assigned IDs make retries idempotent).
	Publish(ctx context.Context, payload []byte) (*Receipt, error)

	// Subscribe streams the committed order as (offset, message) pairs,
	// starting at the first message with offset >= from; from == 0 means
	// the live tail (whatever commits next). The stream is gap-free: it
	// replays the committed history from the serving member's durable log
	// and then follows the live order, resuming across reconnects to a
	// different member. A consumer resuming below the group's log
	// truncation point first receives a state snapshot: a pair whose
	// Message has Snapshot == true, Payload holding the application
	// snapshot that covers every message up to its offset.
	//
	// The iterator blocks while the order is idle and returns when ctx is
	// done, the session closes, or the subscription becomes permanently
	// unserviceable (check Err).
	Subscribe(ctx context.Context, from Offset) iter.Seq2[Offset, Message]

	// Err reports the session's last connection-level error (nil while
	// healthy). Remote sessions keep retrying internally; Err is
	// observability, not a terminal state.
	Err() error

	// Close releases the session. In-flight publishes fail their receipts
	// with ErrStopped (the messages may or may not still commit);
	// subscription iterators return.
	Close() error
}

// --- Remote session core --------------------------------------------------

// SessionLink is one live connection from a client session to a group
// member, carrying opaque sub-protocol payloads both ways. Implementations
// must preserve FIFO order per direction (both shipped transports do).
type SessionLink interface {
	// Send queues one payload to the member; an error means the link is
	// unusable and the session fails over.
	Send(payload []byte) error
	// Close releases the link (idempotent).
	Close() error
}

// LinkDialer connects a session to the group, one member at a time. Each
// Dial call may pick a different member — that rotation is the session's
// failover path — and must install h as the inbound payload handler before
// returning. Dial is called from the session's maintenance goroutine only.
type LinkDialer interface {
	Dial(h func(payload []byte)) (SessionLink, error)
}

// SessionOptions tune a remote session. Zero values select the defaults.
type SessionOptions struct {
	// Window bounds in-flight publishes: Publish blocks once Window
	// receipts are unresolved (backpressure). Default 64.
	Window int
	// AckTimeout is how long a publish may stay unacknowledged before the
	// session assumes the serving member is gone and fails over. Default 2s.
	AckTimeout time.Duration
	// ProbeTimeout is how long a subscription may go without any frame
	// (the server keepalives idle subscriptions) before failover.
	// Default 3s.
	ProbeTimeout time.Duration
	// RedialBackoff paces reconnection attempts while no member is
	// reachable. Default 50ms.
	RedialBackoff time.Duration
	// OnClose, when set, runs after the session shuts down — the hook for
	// releasing a transport endpoint owned by the dialer.
	OnClose func()
	// Edge announces the session as an edge replica in its HELLO
	// (wire.RoleEdge). Serving members expose the count in Metrics; the
	// protocol is otherwise identical.
	Edge bool
}

// WritableAdvertiser is an optional LinkDialer capability: a dialer that
// implements it is told which processes accept publishes when the session
// is redirected off a read-only edge replica (RedirectNotWritable), so
// its rotation can prefer writable members on the reconnect that follows.
// Members is the redirecting node's member list (transport IDs); Addrs,
// when present, carries their dialable addresses in the same order.
type WritableAdvertiser interface {
	NeedWritable(members []ProcID, addrs []string)
}

func (o SessionOptions) withDefaults() SessionOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 3 * time.Second
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 50 * time.Millisecond
	}
	return o
}

// ErrNoMembers is returned by DialSession when no group member answered
// the initial connection round.
var ErrNoMembers = errors.New("fsr: no group member reachable")

// subEventBuffer is each subscription's client-side delivery buffer; a
// full buffer backpressures the link (the server's pacing follows).
const subEventBuffer = 256

// initialDialAttempts bounds the first connection round of DialSession, so
// a fully unreachable group fails fast instead of retrying forever.
const initialDialAttempts = 8

// DialSession runs the client side of the session sub-protocol over links
// from d: pipelined idempotent publishes with a bounded in-flight window,
// offset-resumable subscriptions, and automatic failover to another member
// when the serving one crashes, leaves or redirects. Most callers want the
// ready-made dialers instead: client.Dial (TCP) or Cluster.Dial.
func DialSession(d LinkDialer, opts SessionOptions) (Session, error) {
	s := &remoteSession{
		dialer: d,
		opts:   opts.withDefaults(),
		pubs:   make(map[uint64]*pendingPub),
		subs:   make(map[uint64]*remoteSub),
		kick:   make(chan uint64, 1),
		closed: make(chan struct{}),
	}
	s.window = make(chan struct{}, s.opts.Window)
	s.nextPub = 1
	s.nextSub = 1
	if !s.connect(0, initialDialAttempts) {
		err := s.Err()
		if err == nil {
			err = ErrNoMembers
		}
		return nil, fmt.Errorf("%w: %v", ErrNoMembers, err)
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// remoteSession is the client half of the session sub-protocol.
type remoteSession struct {
	dialer LinkDialer
	opts   SessionOptions

	mu      sync.Mutex
	link    SessionLink // nil while failing over
	linkGen uint64      // bumped per installed link
	pubs    map[uint64]*pendingPub
	nextPub uint64
	subs    map[uint64]*remoteSub
	nextSub uint64
	lastErr error

	// sendMu serializes publish transmission with a failover's pending
	// replay: members must observe one client's PubIDs in order (the
	// dedup floor and the per-origin FIFO guarantee are phrased over it),
	// so a fresh Publish may not overtake older pending publishes that a
	// reconnect is still re-sending.
	sendMu sync.Mutex

	window    chan struct{} // in-flight publish slots
	kick      chan uint64   // failover requests, tagged with the failed gen
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// lastContact is the unix-nano timestamp of the newest inbound frame
	// (events, acks, keepalives alike) — the upstream-liveness signal an
	// edge replica's readiness probe reads via LastContact.
	lastContact atomic.Int64
}

// LastContact reports when the session last heard anything from the
// member serving it (the zero time before first contact). Server
// keepalives arrive every second on an attached idle subscription, so a
// stale LastContact means the upstream link is genuinely out.
func (s *remoteSession) LastContact() time.Time {
	ns := s.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

type pendingPub struct {
	id      uint64
	payload []byte
	r       *Receipt
	sentAt  time.Time
}

// remoteSub is one client-side subscription.
type remoteSub struct {
	id      uint64
	from    uint64 // the original From (0 = live tail)
	cursor  uint64 // highest offset delivered to the consumer
	last    time.Time
	ch      chan subDelivery
	done    chan struct{} // closed when the iterator stops
	deadc   chan struct{} // closed when permanently unserviceable
	dead    bool          // deadc closed (guarded by the session mu)
	strikes int           // consecutive cannot-serve rounds
	// attached marks the subscription as fed by the link's shared tail
	// frames (between an ATTACH marker and a DETACH or reconnect);
	// guarded by the session mu and meaningful for the current link only.
	attached bool
	// evMu serializes EVENT processing for this subscription: during a
	// failover the superseded member's stream can race the new one (each
	// connection delivers from its own goroutine), and the duplicate
	// filter's check-then-deliver must not interleave.
	evMu sync.Mutex
}

type subDelivery struct {
	off uint64
	msg Message
}

// Publish implements Session.
func (s *remoteSession) Publish(ctx context.Context, payload []byte) (*Receipt, error) {
	select {
	case s.window <- struct{}{}:
	case <-s.closed:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	id := s.nextPub
	s.nextPub++
	p := &pendingPub{
		id:      id,
		payload: slices.Clone(payload),
		r:       newReceipt(),
		sentAt:  time.Now(),
	}
	s.pubs[id] = p
	s.mu.Unlock()
	// sendMu orders this transmission behind any in-flight failover
	// replay of older PubIDs; the link is re-read under it so a link
	// installed by that replay is used (our pub registered after its
	// snapshot would otherwise never be sent).
	s.sendMu.Lock()
	s.mu.Lock()
	link, gen := s.link, s.linkGen
	s.mu.Unlock()
	var err error
	if link != nil {
		err = link.Send(wire.EncodeClientPublish(&wire.ClientPublish{PubID: id, Payload: p.payload}))
	}
	s.sendMu.Unlock()
	if err != nil {
		s.failover(gen, err)
	}
	// A nil link means a failover is in flight; its reconnection resends
	// every pending publish, this one included.
	return p.r, nil
}

// Subscribe implements Session.
func (s *remoteSession) Subscribe(ctx context.Context, from Offset) iter.Seq2[Offset, Message] {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	sub := &remoteSub{
		id:    id,
		from:  from,
		last:  time.Now(),
		ch:    make(chan subDelivery, subEventBuffer),
		done:  make(chan struct{}),
		deadc: make(chan struct{}),
	}
	s.subs[id] = sub
	link, gen := s.link, s.linkGen
	s.mu.Unlock()
	if link != nil {
		if err := link.Send(wire.EncodeClientSubscribe(&wire.ClientSubscribe{SubID: id, From: from})); err != nil {
			s.failover(gen, err)
		}
	}
	return func(yield func(Offset, Message) bool) {
		defer s.dropSub(sub)
		for {
			select {
			case d := <-sub.ch:
				if !yield(d.off, d.msg) {
					return
				}
			case <-sub.deadc:
				return // permanently unserviceable (see Err)
			case <-ctx.Done():
				return
			case <-s.closed:
				return
			}
		}
	}
}

// dropSub unregisters a finished subscription and tells the member.
func (s *remoteSession) dropSub(sub *remoteSub) {
	close(sub.done)
	s.mu.Lock()
	delete(s.subs, sub.id)
	link := s.link
	s.mu.Unlock()
	if link != nil {
		_ = link.Send(wire.EncodeClientSubscribe(&wire.ClientSubscribe{SubID: sub.id, Cancel: true}))
	}
}

// Err implements Session.
func (s *remoteSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Close implements Session.
func (s *remoteSession) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		link := s.link
		s.link = nil
		pubs := s.pubs
		s.pubs = make(map[uint64]*pendingPub)
		s.mu.Unlock()
		if link != nil {
			_ = link.Close()
		}
		for _, p := range pubs {
			p.r.fail(ErrStopped)
		}
	})
	s.wg.Wait()
	if s.opts.OnClose != nil {
		s.opts.OnClose()
		s.opts.OnClose = nil
	}
	return nil
}

// failover schedules a reconnection if gen is still the live link.
func (s *remoteSession) failover(gen uint64, err error) {
	s.mu.Lock()
	if err != nil {
		s.lastErr = err
	}
	stale := gen != s.linkGen
	s.mu.Unlock()
	if stale {
		return
	}
	select {
	case s.kick <- gen:
	default: // a failover is already queued
	}
}

// run is the session's maintenance goroutine: it owns reconnection and the
// ack/probe timeouts.
func (s *remoteSession) run() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.AckTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case gen := <-s.kick:
			s.connect(gen, 0)
		case now := <-tick.C:
			if gen, stale := s.stale(now); stale {
				s.connect(gen, 0)
			}
		case <-s.closed:
			return
		}
	}
}

// stale reports whether the live link has timed-out work: a publish past
// AckTimeout or a subscription silent past ProbeTimeout.
func (s *remoteSession) stale(now time.Time) (gen uint64, stale bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen = s.linkGen
	if s.link == nil {
		return gen, false // already failing over
	}
	for _, p := range s.pubs {
		if now.Sub(p.sentAt) > s.opts.AckTimeout {
			return gen, true
		}
	}
	for _, sub := range s.subs {
		if !sub.dead && now.Sub(sub.last) > s.opts.ProbeTimeout {
			return gen, true
		}
	}
	return gen, false
}

// connect replaces the link of generation gen with a fresh one: dial (with
// rotation — each Dial may pick a different member), HELLO, then re-send
// every pending publish in order and re-subscribe every live subscription
// from its cursor. maxAttempts bounds the dial loop (0 = until Close).
// It reports whether a link was installed.
func (s *remoteSession) connect(gen uint64, maxAttempts int) bool {
	s.mu.Lock()
	if gen != s.linkGen {
		s.mu.Unlock()
		return true // a newer link is already up
	}
	old := s.link
	s.link = nil
	newGen := s.linkGen + 1
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	for attempt := 0; maxAttempts == 0 || attempt < maxAttempts; attempt++ {
		select {
		case <-s.closed:
			return false
		default:
		}
		if attempt > 0 {
			select {
			case <-time.After(s.opts.RedialBackoff):
			case <-s.closed:
				return false
			}
		}
		link, err := s.dialer.Dial(func(payload []byte) { s.handleFrame(newGen, payload) })
		if err != nil {
			s.noteErr(err)
			continue
		}
		hello := &wire.ClientHello{}
		if s.opts.Edge {
			hello.Role = wire.RoleEdge
		}
		if err := link.Send(wire.EncodeClientHello(hello)); err != nil {
			_ = link.Close()
			s.noteErr(err)
			continue
		}
		// Install, then replay session state through the new member. State
		// changed while dialing is covered either way: a pub/sub registered
		// before the install is in the snapshot below; one registered after
		// sees the installed link and sends for itself — behind sendMu, so
		// it cannot overtake the replay of older PubIDs.
		now := time.Now()
		s.sendMu.Lock()
		s.mu.Lock()
		s.link = link
		s.linkGen = newGen
		s.lastErr = nil
		pubs := make([]*pendingPub, 0, len(s.pubs))
		for _, p := range s.pubs {
			p.sentAt = now
			pubs = append(pubs, p)
		}
		subs := make([]*wire.ClientSubscribe, 0, len(s.subs))
		for _, sub := range s.subs {
			// Tail attachment is per-link state: the new member re-attaches
			// after its own pager catches this subscription up.
			sub.attached = false
			if sub.dead {
				continue
			}
			sub.last = now
			subs = append(subs, &wire.ClientSubscribe{SubID: sub.id, From: sub.resumeFrom()})
		}
		s.mu.Unlock()
		// Publishes must reach the member in PubID order: the per-client
		// FIFO guarantee (and the dedup floor) is phrased over it.
		slices.SortFunc(pubs, func(a, b *pendingPub) int {
			return int(a.id) - int(b.id)
		})
		ok := true
		for _, p := range pubs {
			if err := link.Send(wire.EncodeClientPublish(&wire.ClientPublish{PubID: p.id, Payload: p.payload})); err != nil {
				s.noteErr(err)
				ok = false
				break
			}
		}
		s.sendMu.Unlock()
		if ok {
			for _, sb := range subs {
				if err := link.Send(wire.EncodeClientSubscribe(sb)); err != nil {
					s.noteErr(err)
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
		gen = newGen // this link failed mid-replay; rotate again
		s.mu.Lock()
		if s.linkGen == newGen {
			s.link = nil
		}
		s.mu.Unlock()
		_ = link.Close()
		newGen++
	}
	return false
}

// resumeFrom computes the offset a re-subscription must restart at.
// Callers hold mu.
func (r *remoteSub) resumeFrom() uint64 {
	if r.cursor > 0 {
		return r.cursor + 1
	}
	return r.from
}

func (s *remoteSession) noteErr(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// handleFrame processes one inbound payload. Frames from a superseded link
// are still meaningful — a commit acknowledged by the old member is
// committed, and a subscription stream stays gap-free under duplicate
// service (each stream is individually gap-free and monotone; entries at
// or below the cursor are dropped) — so gen only scopes failover triggers.
func (s *remoteSession) handleFrame(gen uint64, payload []byte) {
	msg, err := wire.DecodeClient(payload)
	if err != nil {
		return // not ours / corrupt: ignore
	}
	s.lastContact.Store(time.Now().UnixNano())
	switch v := msg.(type) {
	case *wire.ClientPubAck:
		s.mu.Lock()
		p, ok := s.pubs[v.PubID]
		if ok {
			delete(s.pubs, v.PubID)
		}
		s.mu.Unlock()
		if ok {
			p.r.resolve(v.Seq)
			<-s.window // release the in-flight slot
		}
	case *wire.ClientEvent:
		s.handleEvent(gen, v)
	case *wire.ClientRedirect:
		switch v.Reason {
		case wire.RedirectBye:
			s.failover(gen, fmt.Errorf("fsr: serving member said goodbye"))
		case wire.RedirectCannotServe:
			s.cannotServe(gen, v.Sub)
		case wire.RedirectNotWritable:
			// A read-only edge replica refused a publish: tell the dialer
			// who is writable and reconnect there (pending publishes are
			// replayed on the new link). Subscriber-only sessions never
			// publish, so they stay pinned to the edge tier.
			if wa, ok := s.dialer.(WritableAdvertiser); ok {
				wa.NeedWritable(v.Members, v.Addrs)
			}
			s.failover(gen, fmt.Errorf("fsr: serving node is read-only; moving to a writable member"))
		default:
			// Welcome / view change: informational (the dialer's rotation
			// is the discovery mechanism) — except that a welcome from a
			// major-incompatible server means this link cannot be trusted
			// to frame events correctly; fail over and let the dialer find
			// a same-major member.
			if v.Reason == wire.RedirectWelcome && !wire.CompatibleVersion(v.Version) {
				s.failover(gen, fmt.Errorf("fsr: server speaks wire version %d.%d, client speaks %d.x",
					wire.VersionMajor(v.Version), wire.VersionMinor(v.Version), wire.ProtoMajor))
			}
		}
	}
}

// handleEvent folds one EVENT page into its subscription — or, for
// tail/marker frames, into the link's attached-subscription state.
func (s *remoteSession) handleEvent(gen uint64, e *wire.ClientEvent) {
	if e.Tail || e.Attach || e.Detach {
		s.handleTailFrame(gen, e)
		return
	}
	s.mu.Lock()
	sub := s.subs[e.Sub]
	if sub != nil {
		sub.last = time.Now()
		sub.strikes = 0 // the subscription is being served again
		if sub.dead {
			sub = nil // it has been declared unserviceable; drop the stream
		}
	}
	s.mu.Unlock()
	if sub == nil {
		return // cancelled (or a stale stream after re-subscribe elsewhere)
	}
	s.foldPage(sub, e)
}

// handleTailFrame processes the shared-tail side of the protocol. Unlike
// per-subscription pages — which are safe to fold from a superseded link
// (each stream is individually gap-free and the cursor dedups) — tail
// frames and attach/detach markers are meaningful only on the link that
// sent them: an old link's ATTACH must not make this session fold the NEW
// link's tail into a subscription its pager is still catching up.
func (s *remoteSession) handleTailFrame(gen uint64, e *wire.ClientEvent) {
	s.mu.Lock()
	if gen != s.linkGen {
		s.mu.Unlock()
		return
	}
	now := time.Now()
	if e.Attach {
		if sub := s.subs[e.Sub]; sub != nil && !sub.dead {
			sub.attached = true
			sub.last = now
			sub.strikes = 0
		}
		s.mu.Unlock()
		return
	}
	if e.Detach {
		// The server demoted this whole link to catch-up paging.
		for _, sub := range s.subs {
			sub.attached = false
		}
		s.mu.Unlock()
		return
	}
	// A tail batch (or, with no entries, the attached-mode keepalive):
	// every attached subscription receives the same page, deduped by its
	// own cursor.
	targets := make([]*remoteSub, 0, len(s.subs))
	for _, sub := range s.subs {
		if sub.attached && !sub.dead {
			sub.last = now
			sub.strikes = 0
			targets = append(targets, sub)
		}
	}
	s.mu.Unlock()
	if len(e.Entries) == 0 {
		return
	}
	for _, sub := range targets {
		s.foldPage(sub, e)
	}
}

// foldPage delivers one EVENT page to one subscription, deduping against
// its cursor.
func (s *remoteSession) foldPage(sub *remoteSub, e *wire.ClientEvent) {
	sub.evMu.Lock()
	defer sub.evMu.Unlock()
	s.mu.Lock()
	cursor := sub.cursor
	s.mu.Unlock()
	// Under evMu the cursor only advances through this function, so
	// tracking it locally across the page is safe (deliver writes it back
	// per accepted pair).
	if e.HasSnapshot && e.SnapSeq > cursor {
		m := Message{
			Seq:      e.SnapSeq,
			Snapshot: true,
			Payload:  slices.Clone(e.Snapshot),
		}
		if !s.deliver(sub, e.SnapSeq, m) {
			return
		}
		cursor = e.SnapSeq
	}
	for i := range e.Entries {
		en := &e.Entries[i]
		if en.Seq <= cursor {
			continue // duplicate from a superseded stream
		}
		m := Message{
			Seq:       en.Seq,
			Origin:    en.Origin,
			LogicalID: en.Logical,
			Payload:   slices.Clone(en.Payload),
		}
		if !s.deliver(sub, en.Seq, m) {
			return
		}
		cursor = en.Seq
	}
}

// deliver hands one pair to the subscription's iterator, advancing the
// cursor. A full buffer blocks — backpressuring this link — until the
// consumer drains, the iterator stops, or the session closes.
func (s *remoteSession) deliver(sub *remoteSub, off uint64, m Message) bool {
	select {
	case sub.ch <- subDelivery{off: off, msg: m}:
		s.mu.Lock()
		if off > sub.cursor {
			sub.cursor = off
		}
		s.mu.Unlock()
		return true
	case <-sub.done:
		return false
	case <-sub.deadc:
		return false
	case <-s.closed:
		return false
	}
}

// cannotServe handles a member that cannot satisfy a subscription's
// offset: rotate and retry elsewhere; a subscription no member can serve
// (bounded by cannotServeLimit rounds) ends its iterator.
const cannotServeLimit = 8

func (s *remoteSession) cannotServe(gen uint64, subID uint64) {
	s.mu.Lock()
	sub := s.subs[subID]
	var dead bool
	if sub != nil && !sub.dead {
		sub.strikes++
		if sub.strikes >= cannotServeLimit {
			sub.dead = true
			dead = true
		}
	}
	s.mu.Unlock()
	if sub == nil {
		return
	}
	if dead {
		s.noteErr(fmt.Errorf("fsr: subscription %d from offset %d: no member retains that history", subID, sub.from))
		close(sub.deadc)
		return
	}
	s.failover(gen, fmt.Errorf("fsr: member cannot serve subscription from offset %d", sub.from))
}
