package fsr_test

import (
	"context"
	"testing"
	"time"

	"fsr"
	"fsr/client"
	"fsr/internal/wire"
	"fsr/transport/tcp"
)

// TestNeverReadingClientCannotWedgeMember is the regression test for the
// event-loop stall this serving layer was built to remove: a subscriber
// that connects, subscribes, and then never reads its socket. Its TCP
// receive buffer fills, the member's writes to it block — and that must
// wedge exactly that one client's writer goroutine, nothing else. A
// well-behaved client on the same member must publish and stream the full
// history at full speed, and the stalled client must be detached from the
// shared tail rather than buffered without bound.
func TestNeverReadingClientCannotWedgeMember(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	ct := fsr.TCPTransport(nil)
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, ct)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	addrs := ct.Addrs()

	// The misbehaving client: raw connection, HELLO + SUBSCRIBE, then
	// total silence — no handler is installed, so nothing ever drains the
	// socket and the member's sends to it eventually block in the kernel.
	bad, err := tcp.DialConn(addrs[0], fsr.ClientIDBase+777, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Send(wire.EncodeClientHello(&wire.ClientHello{})); err != nil {
		t.Fatal(err)
	}
	if err := bad.Send(wire.EncodeClientSubscribe(&wire.ClientSubscribe{SubID: 1, From: 1})); err != nil {
		t.Fatal(err)
	}

	good, err := client.Dial(client.Config{Addrs: addrs[:1]}) // same member as the wedged client
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	// Enough bytes to overrun any socket buffer many times over: if the
	// member funneled client serving through one loop, the stalled socket
	// would stall these publishes. Sequential waits keep the commit
	// batches small, so the wedged client's bounded frame queue (not just
	// the kernel's byte buffer) is what fills.
	const total = 400
	payload := make([]byte, 32<<10)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < total; i++ {
		r, err := good.Publish(ctx, payload)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
	}

	// The full stream must also be readable back through the same member.
	var got int
	for _, m := range good.Subscribe(ctx, 1) {
		if m.Snapshot {
			continue
		}
		if got++; got == total {
			break
		}
	}
	if got != total {
		t.Fatalf("read %d of %d messages back", got, total)
	}

	// And the wedged client must have been isolated: demoted from the
	// shared tail once its bounded transmit queue filled.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := cluster.Node(0).Metrics()
		if m.TailDetaches >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled client never detached: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
