package fsr

// StateMachine is replicated application state driven by the agreed total
// order — the paper's motivating use case (§1): every replica applies the
// same messages in the same order and therefore stays identical, with no
// cross-replica coordination beyond FSR itself.
//
// Attach one with Config.StateMachine (or ClusterConfig.StateMachines).
// Combined with Config.DurableDir, the node keeps a write-ahead log of the
// delivered order and periodic snapshots: a crashed process restarted on
// the same directory rebuilds its state from snapshot + WAL replay, then
// fetches the suffix of the order it missed from its peers (catch-up)
// before rejoining ring traffic.
//
// Lifecycle within one process incarnation: Restore at most once (at
// startup, from the latest local snapshot, or mid-catch-up when a peer
// hands over a full state transfer because the entries this replica needs
// were already truncated), then Apply exactly once per message, in total
// order. All calls are made from the node's single delivery goroutine, so
// implementations need no locking against the node — only against their
// own readers.
type StateMachine interface {
	// Apply folds one delivered message into the state. The message's Seq
	// is its position in the total order; implementations that serve reads
	// concurrently should treat it as their version number.
	Apply(Message)
	// Snapshot serializes the complete state. The node calls it every
	// Config.SnapshotEvery applied messages and hands the bytes to the
	// durable log (truncating the WAL behind it) and to catching-up peers.
	// The returned slice is owned by the node. A snapshot travels to a
	// catching-up peer as one transport payload (transport/tcp chunks
	// large payloads transparently, bounded by tcp.MaxAssembledSize).
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previously serialized Snapshot.
	Restore([]byte) error
}
