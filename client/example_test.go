package client_test

import (
	"context"
	"fmt"
	"log"

	"fsr"
	"fsr/client"
)

// A remote session over real TCP: three group members in this process (a
// deployment would run them as separate processes — same wire traffic),
// one non-member client publishing and subscribing through them.
func Example() {
	ct := fsr.TCPTransport(nil)
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, ct)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	s, err := client.Dial(client.Config{Addrs: ct.Addrs()})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for i := range 3 {
		r, err := s.Publish(ctx, fmt.Appendf(nil, "event %d", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Wait(ctx); err != nil {
			log.Fatal(err) // committed: durable at the member, uniformly ordered
		}
	}

	got := 0
	for _, m := range s.Subscribe(ctx, 1) {
		fmt.Printf("%s\n", m.Payload)
		if got++; got == 3 {
			break
		}
	}
	// Output:
	// event 0
	// event 1
	// event 2
}
