// Package client connects non-member publishers and subscribers to an FSR
// group over TCP.
//
// The ordering core stays a fixed, small ring — that is what gives the
// protocol its throughput — while any number of clients use the total
// order through it: Dial returns an fsr.Session whose Publish is pipelined
// and idempotent (each publish carries a client-assigned ID, so retries
// across a member crash commit exactly once) and whose Subscribe streams
// the committed order from any offset, replaying the members' durable logs
// and then following the live tail, resuming gap-free across failover to a
// different member.
//
//	s, err := client.Dial(client.Config{Addrs: memberAddrs})
//	...
//	r, _ := s.Publish(ctx, []byte("order me"))
//	seq := r.Seq() // committed offset
//	for off, m := range s.Subscribe(ctx, 1) { ... }
//
// In-process code gets the identical interface from Node.Session or
// Cluster.Dial; everything written against fsr.Session runs unchanged
// against either.
package client

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"fsr"
	"fsr/transport/tcp"
)

// Config parameterizes Dial.
type Config struct {
	// Addrs are the listen addresses of the group members; the session
	// binds to one at a time and rotates through the rest on failure.
	// Required.
	Addrs []string

	// ID is the client's identity — the dedup key that makes publish
	// retries idempotent and the Origin subscribers see on this client's
	// messages. It must be >= fsr.ClientIDBase and unique among live
	// clients. Zero picks a random ID: fine for a client that lives and
	// dies with its process; supply a stable ID to extend exactly-once
	// publishing across client restarts.
	ID fsr.ProcID

	// Window bounds in-flight publishes (default 64); DialTimeout bounds
	// one connection attempt (default 3s). AckTimeout and ProbeTimeout
	// are the failover triggers for publishes and subscriptions — see
	// fsr.SessionOptions.
	Window       int
	DialTimeout  time.Duration
	AckTimeout   time.Duration
	ProbeTimeout time.Duration

	// Edge announces this client as an edge replica (see package edge): the
	// serving member feeds it the committed tail for re-serving rather than
	// treating it as an ordinary subscriber.
	Edge bool
}

// Dial connects to the group and returns its session. It fails fast when
// no member is reachable; once connected, the session fails over between
// members internally and Close is the only way to end it.
func Dial(cfg Config) (fsr.Session, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("client: no member addresses")
	}
	if cfg.ID == 0 {
		// A fresh identity per session: the high bit marks the client ID
		// space, the rest is random (collisions across concurrently live
		// clients are the operator's responsibility when setting explicit
		// IDs, and ~2^31 random choices here).
		cfg.ID = fsr.ClientIDBase + fsr.ProcID(rand.Uint32N(1<<31))
	}
	if cfg.ID < fsr.ClientIDBase {
		return nil, fmt.Errorf("client: ID %d is in the member ID space (must be >= %d)", cfg.ID, fsr.ClientIDBase)
	}
	return fsr.DialSession(&dialer{cfg: cfg}, fsr.SessionOptions{
		Window:       cfg.Window,
		AckTimeout:   cfg.AckTimeout,
		ProbeTimeout: cfg.ProbeTimeout,
		Edge:         cfg.Edge,
	})
}

// dialer rotates the session across the configured member addresses.
type dialer struct {
	cfg Config

	mu       sync.Mutex
	next     int
	writable []string // addresses advertised as writable, once known
}

// Dial implements fsr.LinkDialer. Once a writable set has been advertised
// (a read-only edge bounced a publish), the rotation prefers it.
func (d *dialer) Dial(h func(payload []byte)) (fsr.SessionLink, error) {
	d.mu.Lock()
	addrs := d.cfg.Addrs
	if len(d.writable) > 0 {
		addrs = d.writable
	}
	addr := addrs[d.next%len(addrs)]
	d.next++
	d.mu.Unlock()
	cc, err := tcp.DialConn(addr, d.cfg.ID, d.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc.SetHandler(h)
	return cc, nil
}

// NeedWritable implements fsr.WritableAdvertiser: latch the advertised
// writable addresses so the next Dial lands on a member that accepts
// publishes.
func (d *dialer) NeedWritable(members []fsr.ProcID, addrs []string) {
	if len(addrs) == 0 {
		return
	}
	d.mu.Lock()
	d.writable = append([]string(nil), addrs...)
	d.next = 0
	d.mu.Unlock()
}
